//! The detectably recoverable exchanger — Section 6 of the paper, derived
//! from the Scherer–Lea–Scott elimination exchanger.
//!
//! The exchanger is a pointer `slot` to a node holding
//! `⟨value, partner, info⟩` plus a free/occupied marker. Following the
//! paper's sketch, every state transition is a Tracking operation driven by
//! the generic [`crate::help::help`] engine:
//!
//! * **Capture** — a thread `p` finding the slot node *free* installs its
//!   own node `nd_p` (value set, partner ⊥, born tagged as NewSet):
//!   AffectSet = `{slot-node}` (replaced ⇒ tagged forever), WriteSet =
//!   `{slot: free → nd_p}`. `p` then busy-waits on `nd_p.partner`.
//! * **Collide** — a thread `q` finding a *waiting* node `nd` pairs with
//!   it: WriteSet = `{nd.partner: ⊥ → q's value, slot: nd → fresh free
//!   node}`; its response is `nd.value`, gathered before tagging and
//!   immutable. The partner field is persisted by the engine's update
//!   phase *before* the result is set, so the waiter's response is durable
//!   no later than the collider's.
//! * **Cancel** — a waiter that exhausts its spin budget withdraws:
//!   WriteSet = `{slot: nd_p → fresh free node}`. Cancel and collide race
//!   on `nd_p`'s tag; exactly one wins, and a losing cancel finds the
//!   partner value written.
//!
//! Reclamation: every node that durably leaves the slot is retired to
//! `pmem::palloc` limbo by its unique unlinker — a successful collide
//! retires the waiter node it replaced (plus its own never-published
//! waiter node), a successful cancel retires the withdrawn node, a
//! successful capture retires the free node it displaced, and lost
//! attempts retire their unpublished replacement nodes. Recovery paths
//! never retire (they cannot tell whether the pre-crash run already did).
//! A no-op on the default bump pool.
//!
//! Detectability: `RD_q` always names the thread's latest
//! capture/collide/cancel descriptor. On recovery, a collide's outcome is
//! read from its descriptor; a capture that took effect resumes waiting on
//! its own node (recorded in the descriptor's NewSet); anything that did
//! not take effect is re-invoked.

use std::sync::Arc;

use pmem::{is_tagged, PAddr, PmemPool, ThreadCtx};

use crate::descriptor::{AffectEntry, Desc, WriteEntry};
use crate::help::help;
use crate::result::{dec_val, BOTTOM, TRUE};
use crate::sites::{S_CP, S_DESC, S_NEW, S_PARTNER, S_RD};

/// Descriptor op-type tag for slot captures.
pub const OP_CAPTURE: u8 = 7;
/// Descriptor op-type tag for collisions.
pub const OP_COLLIDE: u8 = 8;
/// Descriptor op-type tag for cancellations.
pub const OP_CANCEL: u8 = 9;

// Node layout (one cache line): w0 value, w1 partner, w2 info, w3 free?.
const N_VALUE: u64 = 0;
const N_PARTNER: u64 = 1;
const N_INFO: u64 = 2;
const N_FREE: u64 = 3;

/// Largest exchangeable value (room for the +1 partner encoding and the
/// +3 result encoding).
pub const VALUE_MAX: u64 = u64::MAX - 4;

/// The detectably recoverable exchanger.
#[derive(Clone)]
pub struct RecoverableExchanger {
    pool: Arc<PmemPool>,
    slot: PAddr,
}

impl RecoverableExchanger {
    /// Creates an exchanger rooted in root cell `root_idx`, or re-attaches
    /// to the one already rooted there.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize) -> Self {
        let slot = pool.root(root_idx);
        if pool.load(slot) == 0 {
            let free = Self::mk_free(&pool, 0);
            pool.pwb(free, S_NEW);
            pool.pfence();
            pool.store(slot, free.raw());
            pool.pbarrier(slot, 1, S_NEW);
        }
        RecoverableExchanger { pool, slot }
    }

    fn mk_free(pool: &PmemPool, info: u64) -> PAddr {
        let n = pool.alloc_lines(1);
        Self::init_free(pool, n, info);
        n
    }

    /// Free-node initialization, split from [`Self::mk_free`] so operation
    /// paths can allocate through [`ThreadCtx::palloc`] (recycling retired
    /// blocks on reclaim pools) while construction keeps the bump path.
    fn init_free(pool: &PmemPool, n: PAddr, info: u64) {
        pool.store(n.add(N_FREE), 1);
        pool.store(n.add(N_INFO), info);
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn prologue(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        ctx.set_rd(0);
        pool.pbarrier(ctx.rd_addr(), 1, S_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), S_CP);
        pool.psync();
    }

    /// Exchanges `value` with a concurrent peer. Spins up to roughly
    /// `spin_budget` iterations waiting for a partner after capturing the
    /// slot; returns `None` if the wait was cancelled without a collision.
    pub fn exchange(&self, ctx: &ThreadCtx, value: u64, spin_budget: usize) -> Option<u64> {
        ctx.begin_op(S_CP);
        self.exchange_started(ctx, value, spin_budget)
    }

    /// [`Self::exchange`] without the system's `CP_q := 0` pre-step.
    pub fn exchange_started(&self, ctx: &ThreadCtx, value: u64, spin_budget: usize) -> Option<u64> {
        assert!(value <= VALUE_MAX, "value too large to exchange");
        let pool = &*self.pool;
        self.prologue(ctx);
        // The waiter node is allocated once and reused across attempts (it
        // is only published by a successful capture).
        let nd_p = ctx.palloc(1);
        pool.store(nd_p.add(N_VALUE), value);
        pool.store(nd_p.add(N_PARTNER), 0);
        pool.store(nd_p.add(N_FREE), 0);
        loop {
            // Gather: the current slot node and its info (version stamp).
            let nd_raw = pool.load(self.slot);
            let nd = PAddr::from_raw(nd_raw);
            let info = pool.load(nd.add(N_INFO));
            if is_tagged(info) {
                help(pool, Desc::from_raw(info));
                continue;
            }
            if pool.load(nd.add(N_FREE)) == 1 {
                // ---- Capture ----
                let desc = Desc::alloc(pool);
                pool.store(nd_p.add(N_INFO), desc.tagged());
                desc.init(
                    pool,
                    OP_CAPTURE,
                    TRUE,
                    &[AffectEntry {
                        info_addr: nd.add(N_INFO),
                        observed: info,
                        untag_on_cleanup: false, // leaves the slot forever
                    }],
                    &[WriteEntry {
                        field: self.slot,
                        old: nd_raw,
                        new: nd_p.raw(),
                    }],
                    &[nd_p.add(N_INFO)],
                );
                pool.pwb(nd_p, S_NEW);
                pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
                pool.pfence();
                ctx.set_rd(desc.raw());
                pool.pwb(ctx.rd_addr(), S_RD);
                pool.psync();
                help(pool, desc);
                if desc.result(pool) == BOTTOM {
                    continue; // someone else captured first; retry
                }
                // The displaced free node left the slot for good (it keeps
                // its tag; late exchangers that gathered it still help
                // through its intact info word until the quiescent drain).
                ctx.retire(nd, 1);
                return self.wait_for_partner(ctx, nd_p, spin_budget);
            }
            // ---- Collide ----
            let their_value = pool.load(nd.add(N_VALUE)); // immutable once published
            let free2 = ctx.palloc(1);
            Self::init_free(pool, free2, 0);
            let desc = Desc::alloc(pool);
            pool.store(free2.add(N_INFO), desc.tagged());
            desc.init(
                pool,
                OP_COLLIDE,
                crate::result::enc_val(their_value),
                &[AffectEntry {
                    info_addr: nd.add(N_INFO),
                    observed: info,
                    untag_on_cleanup: false, // the waiter node leaves the slot
                }],
                &[
                    // partner first: the waiter's response must be in place
                    // (and is persisted by the update phase) before the slot
                    // is released
                    WriteEntry {
                        field: nd.add(N_PARTNER),
                        old: 0,
                        new: value + 1,
                    },
                    WriteEntry {
                        field: self.slot,
                        old: nd_raw,
                        new: free2.raw(),
                    },
                ],
                &[free2.add(N_INFO)],
            );
            pool.pwb(free2, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                // Our collide replaced the waiter's node in the slot: we
                // are its unique unlinker, so we retire it — the waiter
                // only ever *reads* its partner word, and limbo keeps a
                // retired block's words intact until a quiescent drain
                // (which no operation window spans). Our own pre-allocated
                // waiter node was never published; it goes back too.
                ctx.retire(nd, 1);
                ctx.retire(nd_p, 1);
                return Some(dec_val(r));
            }
            // The collide lost the race on the waiter's tag: the
            // replacement free node was never published.
            ctx.retire(free2, 1);
        }
    }

    /// Waits on a captured node for a collision, cancelling after the spin
    /// budget runs out.
    fn wait_for_partner(&self, ctx: &ThreadCtx, nd_p: PAddr, spin_budget: usize) -> Option<u64> {
        let pool = &*self.pool;
        for i in 0..spin_budget {
            let partner = pool.load(nd_p.add(N_PARTNER));
            if partner != 0 {
                // Persist our own response before returning (the collider's
                // update-phase pwb covers it too, but we must not rely on
                // the collider still running).
                pool.pwb(nd_p.add(N_PARTNER), S_PARTNER);
                pool.psync();
                return Some(partner - 1);
            }
            if i % 64 == 63 {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
        }
        // ---- Cancel ----
        loop {
            let partner = pool.load(nd_p.add(N_PARTNER));
            if partner != 0 {
                pool.pwb(nd_p.add(N_PARTNER), S_PARTNER);
                pool.psync();
                return Some(partner - 1);
            }
            let info = pool.load(nd_p.add(N_INFO));
            if is_tagged(info) {
                // a collider is mid-flight on our node: help it finish
                help(pool, Desc::from_raw(info));
                continue;
            }
            let free2 = ctx.palloc(1);
            Self::init_free(pool, free2, 0);
            let desc = Desc::alloc(pool);
            pool.store(free2.add(N_INFO), desc.tagged());
            desc.init(
                pool,
                OP_CANCEL,
                TRUE,
                &[AffectEntry {
                    info_addr: nd_p.add(N_INFO),
                    observed: info,
                    untag_on_cleanup: false,
                }],
                &[WriteEntry {
                    field: self.slot,
                    old: nd_p.raw(),
                    new: free2.raw(),
                }],
                &[free2.add(N_INFO)],
            );
            pool.pwb(free2, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            if desc.result(pool) != BOTTOM {
                // The withdrawal took effect: our node left the slot and —
                // uniquely here — nobody else will ever unlink it, so the
                // canceller retires it. The partner-found branches above
                // deliberately do NOT retire nd_p: a successful collider
                // already retired it as the node *it* unlinked, and
                // recovery re-enters this wait loop, so retiring on the
                // read-only exit would double-retire.
                ctx.retire(nd_p, 1);
                return None; // withdrew without a partner
            }
            // cancel lost the race on nd_p's tag: a collision happened (or
            // is happening); loop re-checks the partner field. The
            // unpublished replacement free node goes back.
            ctx.retire(free2, 1);
        }
    }

    /// `Exchange.Recover` (Algorithm 1 lines 27–31, specialized per
    /// descriptor type — see module docs).
    pub fn recover_exchange(&self, ctx: &ThreadCtx, value: u64, spin_budget: usize) -> Option<u64> {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return self.exchange(ctx, value, spin_budget);
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        let r = desc.result(pool);
        match desc.op_type(pool) {
            OP_COLLIDE => {
                if r != BOTTOM {
                    Some(dec_val(r))
                } else {
                    self.exchange(ctx, value, spin_budget)
                }
            }
            OP_CAPTURE => {
                if r == BOTTOM {
                    return self.exchange(ctx, value, spin_budget);
                }
                // Captured: our node is the descriptor's NewSet entry.
                let nd_p = PAddr(desc.new_node(pool, 0).raw() - N_INFO);
                self.wait_for_partner(ctx, nd_p, spin_budget)
            }
            OP_CANCEL => {
                if r != BOTTOM {
                    None // the withdrawal took effect: no partner
                } else {
                    // cancel never took effect: resume the wait/cancel loop
                    let nd_p = PAddr(desc.affect(pool, 0).info_addr.raw() - N_INFO);
                    self.wait_for_partner(ctx, nd_p, spin_budget)
                }
            }
            other => panic!("RD_q names a non-exchanger descriptor (op type {other})"),
        }
    }

    /// Is the slot currently free (quiescent inspection)?
    pub fn is_free(&self) -> bool {
        let nd = PAddr::from_raw(self.pool.load(self.slot));
        self.pool.load(nd.add(N_FREE)) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};

    fn setup() -> (Arc<PmemPool>, RecoverableExchanger) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let ex = RecoverableExchanger::new(pool.clone(), 2);
        (pool, ex)
    }

    #[test]
    fn lone_thread_times_out() {
        let (p, ex) = setup();
        let ctx = ThreadCtx::new(p, 0);
        assert_eq!(ex.exchange(&ctx, 42, 10), None);
        assert!(ex.is_free(), "cancelled exchange must leave the slot free");
    }

    #[test]
    fn two_threads_swap_values() {
        let (p, ex) = setup();
        let mut handles = vec![];
        for t in 0..2usize {
            let ex = ex.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                ex.exchange(&ctx, t as u64 + 100, 50_000_000)
            }));
        }
        let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got[0], Some(101), "thread 0 receives thread 1's value");
        assert_eq!(got[1], Some(100), "thread 1 receives thread 0's value");
        assert!(ex.is_free());
    }

    #[test]
    fn many_threads_pair_up_consistently() {
        // 4 threads, each exchanging its id; every received value must be a
        // distinct other id, and pairing must be mutual.
        let (p, ex) = setup();
        let mut handles = vec![];
        for t in 0..4usize {
            let ex = ex.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                ex.exchange(&ctx, t as u64, 50_000_000)
            }));
        }
        let got: Vec<Option<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut received: Vec<u64> = got.iter().flatten().copied().collect();
        assert_eq!(
            received.len(),
            4,
            "with 4 peers and large budgets, all pair up"
        );
        received.sort_unstable();
        assert_eq!(received, vec![0, 1, 2, 3]);
        for (me, val) in got.iter().enumerate() {
            let other = val.unwrap() as usize;
            assert_eq!(got[other], Some(me as u64), "pairing must be mutual");
        }
    }

    #[test]
    fn sequential_reuse_after_timeout() {
        let (p, ex) = setup();
        let ctx = ThreadCtx::new(p, 0);
        for _ in 0..5 {
            assert_eq!(ex.exchange(&ctx, 7, 5), None);
            assert!(ex.is_free());
        }
    }

    #[test]
    fn crash_swept_lone_exchange_recovers() {
        // Crash a spin-budget-0 exchange (capture then cancel) at every
        // instrumented event; recovery must come back with None (no partner
        // ever existed) and a free slot.
        for crash_at in 0..4000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let ex = RecoverableExchanger::new(pool.clone(), 2);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| ex.exchange_started(&ctx, 9, 0));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert_eq!(r, None);
                    assert!(ex.is_free());
                    return;
                }
                None => {
                    assert_eq!(
                        ex.recover_exchange(&ctx, 9, 0),
                        None,
                        "crash_at={crash_at}: no partner ever arrived"
                    );
                    assert!(ex.is_free(), "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_collide_returns_partner_value() {
        let (p, ex) = setup();
        let mut handles = vec![];
        for t in 0..2usize {
            let ex = ex.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let r = ex.exchange(&ctx, t as u64 + 100, 50_000_000);
                (ctx, r)
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Re-run recovery for both threads: each must reproduce its answer.
        for (ctx, original) in &results {
            let recovered = ex.recover_exchange(ctx, 0, 10);
            assert_eq!(recovered, *original, "recovery must reproduce the response");
        }
    }

    #[test]
    fn reclaim_pool_churn_recycles_slot_nodes() {
        // Repeated lone-thread timeouts and paired swaps on a reclaiming
        // pool. Every exchange allocates a value node, a reservation node
        // and fresh free nodes; all but the one left installed in the slot
        // must be retired, survive the allocator audit, and get re-issued
        // after a quiescent drain.
        let pool = Arc::new(PmemPool::new(PoolCfg {
            reclaim: true,
            ..PoolCfg::model(16 << 20)
        }));
        let ex = RecoverableExchanger::new(pool.clone(), 2);
        let ctx0 = ThreadCtx::new(pool.clone(), 0);
        for _ in 0..50 {
            assert_eq!(ex.exchange(&ctx0, 7, 10), None);
            assert!(ex.is_free());
        }
        pool.palloc_drain_all();
        pool.palloc_check().unwrap();
        assert!(
            !pool.palloc_free_blocks().is_empty(),
            "timeout churn retired nodes but none reached the free lists"
        );
        for round in 0..20 {
            let mut handles = vec![];
            for t in 0..2usize {
                let ex = ex.clone();
                let ctx = ThreadCtx::new(pool.clone(), t);
                handles.push(std::thread::spawn(move || {
                    ex.exchange(&ctx, t as u64 + 100, 50_000_000)
                }));
            }
            let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(got[0], Some(101), "round {round}");
            assert_eq!(got[1], Some(100), "round {round}");
            // Quiescent: both participants returned, so limbo may drain.
            pool.palloc_drain_all();
            pool.palloc_check().unwrap();
        }
        // Recycling must be real: the next allocation comes from a drained
        // free list, not fresh bump space.
        let wm = pool.palloc_free_blocks().iter().map(|&(b, _)| b).max();
        let a = ctx0.palloc(1);
        assert!(
            wm.is_some_and(|hi| a.raw() <= hi),
            "allocation after drain skipped the free lists"
        );
    }
}
