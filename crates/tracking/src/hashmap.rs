//! A detectably recoverable, lock-free, Clevel-style **resizable hash
//! table** — the Tracking transformation applied to a structure class the
//! paper did not cover.
//!
//! Each bucket is a sorted linked list in the style of [`crate::list`]
//! (per-bucket `head`/`tail` sentinels, one-line nodes carrying an extra
//! `value` word). The table grows by publishing a **new level** whose bucket
//! directory is twice as large and migrating every old bucket into it; the
//! resize protocol itself runs through the same descriptor/`help` machinery
//! as user operations, so it is restartable from *any* crash point:
//!
//! * **Publish**: the new level (directory + fresh sentinels) is built and
//!   persisted, then installed with a CAS on the header's `next` word.
//!   Helpers that observe `next ≠ 0` re-flush the header before migrating
//!   (flush-on-read), so no migration effect can become durable while the
//!   published level is not.
//! * **Migrate**: buckets are drained in cursor order. Each step moves the
//!   *first* node of the old chain with a `OP_MOVE` descriptor whose
//!   WriteSet links the copy into the new level **before** unlinking the
//!   original — a key is transiently in both levels (benign for an
//!   insert-if-absent map) but never in neither. The moved-out original
//!   keeps its tag forever, like a deleted list node. An empty bucket is
//!   closed with a write-free `OP_SEAL` descriptor that tags the bucket
//!   head forever: the tag doubles as the version stamp proving the bucket
//!   was continuously empty, and permanently diverts late operations.
//! * **Finish**: the header's `current` word is CASed to the new level and
//!   `next` is cleared, each persisted separately; both words share one
//!   cache line, so every crash resolution of the header is a legal
//!   protocol state.
//!
//! User operations never run two-level routing: an operation that observes
//! a pending resize completes the *entire* migration first (cooperative
//! full-help), and operations that raced with the publish are caught by the
//! version stamps — see DESIGN.md ("Resize detectability invariants") for
//! the case analysis of why a stale-level answer is always either valid or
//! retried.
//!
//! # Crash-inject → recover
//!
//! ```
//! use std::sync::Arc;
//! use pmem::{PmemPool, PoolCfg, ThreadCtx};
//! use tracking::hashmap::RecoverableHashMap;
//! use tracking::sites::S_CP;
//!
//! let pool = Arc::new(PmemPool::new(PoolCfg::model(8 << 20)));
//! let map = RecoverableHashMap::new(pool.clone(), 0);
//! let ctx = ThreadCtx::new(pool.clone(), 0);
//! assert!(map.put(&ctx, 1, 100));
//!
//! // Crash a put mid-flight after 25 instrumented events...
//! ctx.begin_op(S_CP);
//! pool.crash_ctl().arm_after(25);
//! let pre = pmem::run_crashable(|| map.put_started(&ctx, 7, 700));
//! pool.crash(&mut pmem::PessimistAdversary);
//!
//! // ...and recover: the response is exact, the effect exactly-once.
//! let created = match pre {
//!     Some(r) => r,                          // completed before the crash
//!     None => map.recover_put(&ctx, 7, 700), // detectable recovery
//! };
//! assert!(created);
//! assert_eq!(map.get(&ctx, 7), Some(700));
//! assert_eq!(map.get(&ctx, 1), Some(100));
//! ```

use std::sync::Arc;

use pmem::{is_tagged, PAddr, PmemPool, ThreadCtx};

use crate::descriptor::{AffectEntry, Desc, WriteEntry};
use crate::help::help;
use crate::list::{KEY_MAX, KEY_MIN};
use crate::result::{dec_val, enc_bool, enc_val, BOTTOM, FALSE, TRUE};
use crate::sites::{S_CP, S_CURSOR, S_DESC, S_LEVEL, S_NEW, S_RD};

/// Descriptor op-type tag for map puts.
pub const OP_PUT: u8 = 10;
/// Descriptor op-type tag for map removes.
pub const OP_REMOVE: u8 = 11;
/// Descriptor op-type tag for map gets.
pub const OP_GET: u8 = 12;
/// Descriptor op-type tag for resize bucket-migration moves.
pub const OP_MOVE: u8 = 13;
/// Descriptor op-type tag for resize bucket seals.
pub const OP_SEAL: u8 = 14;

// Node layout (one cache line): w0 = key, w1 = next, w2 = info, w3 = value.
const N_KEY: u64 = 0;
const N_NEXT: u64 = 1;
const N_INFO: u64 = 2;
const N_VAL: u64 = 3;

// Header line: w0 = current level, w1 = pending next level (0 = none).
const H_CURR: u64 = 0;
const H_NEXT: u64 = 1;

// Level block: w0 = bucket count (power of two, immutable), w1 = migration
// cursor (next *old* bucket to drain while this level is pending),
// w2.. = bucket head pointers.
const L_NB: u64 = 0;
const L_CURSOR: u64 = 1;
const L_BUCKETS: u64 = 2;

/// Sizing knobs. The harness uses aggressive values (tiny initial directory,
/// short chains) so resizes land inside the swept/explored event space; the
/// defaults suit the examples.
#[derive(Copy, Clone, Debug)]
pub struct HashMapConfig {
    /// Bucket count of the first level. Must be a power of two ≥ 1.
    pub initial_buckets: u64,
    /// A put that traverses more than this many user nodes in one bucket
    /// triggers a doubling resize.
    pub max_chain: u64,
}

impl Default for HashMapConfig {
    fn default() -> Self {
        HashMapConfig {
            initial_buckets: 8,
            max_chain: 4,
        }
    }
}

/// The detectably recoverable resizable hash map (insert-if-absent
/// semantics: `put` never overwrites, so a key's value is immutable while
/// bound, and a value word can be gathered without its own stamp).
///
/// Cloneable handle; all state lives in the pool.
#[derive(Clone)]
pub struct RecoverableHashMap {
    pool: Arc<PmemPool>,
    header: PAddr,
    cfg: HashMapConfig,
}

/// Result of the bucket gather phase (the list `Search` plus the bucket
/// head's stamp at traversal start and the traversal length).
struct SearchRes {
    pred: PAddr,
    curr: PAddr,
    pred_info: u64,
    curr_info: u64,
    /// `head.info` read before the first link was followed; an unchanged,
    /// untagged re-read validates read-only *absent* answers.
    head_info0: u64,
    /// User nodes traversed (resize trigger input).
    traversed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RecoverableHashMap {
    /// Creates a new empty map whose header is stored in root cell
    /// `root_idx`, or re-attaches to the map already rooted there (e.g.
    /// after a simulated crash).
    pub fn new(pool: Arc<PmemPool>, root_idx: usize) -> Self {
        Self::with_config(pool, root_idx, HashMapConfig::default())
    }

    /// [`Self::new`] with explicit sizing knobs.
    pub fn with_config(pool: Arc<PmemPool>, root_idx: usize, cfg: HashMapConfig) -> Self {
        assert!(
            cfg.initial_buckets.is_power_of_two(),
            "initial_buckets must be a power of two"
        );
        pool.register_site_names(&crate::sites::SITES);
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        if existing != 0 {
            return RecoverableHashMap {
                pool,
                header: PAddr::from_raw(existing),
                cfg,
            };
        }
        let mut alloc = |n: usize| pool.alloc_lines(n);
        let lvl = Self::build_level(&pool, &mut alloc, cfg.initial_buckets);
        pool.pfence();
        let header = pool.alloc_lines(1);
        pool.store(header.add(H_CURR), lvl.raw());
        pool.store(header.add(H_NEXT), 0);
        pool.pwb(header, S_LEVEL);
        pool.pfence();
        pool.store(root, header.raw());
        pool.pbarrier(root, 1, S_LEVEL);
        RecoverableHashMap { pool, header, cfg }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn assert_user_kv(key: u64, val: u64) {
        assert!(
            key > KEY_MIN && key < KEY_MAX,
            "user keys must lie strictly between the sentinels"
        );
        assert!(val <= u64::MAX - 4, "value too large for result encoding");
    }

    /// Builds a level (directory + per-bucket `head`/`tail` sentinels) and
    /// issues its flushes; the caller fences. `alloc` is `pool.alloc_lines`
    /// at construction and `ctx.palloc` at runtime (sentinels of a losing
    /// or sealed level must be retireable).
    fn build_level(pool: &PmemPool, alloc: &mut dyn FnMut(usize) -> PAddr, nbuckets: u64) -> PAddr {
        let nwords = L_BUCKETS + nbuckets;
        let lvl = pool.alloc_lines(nwords.div_ceil(8) as usize);
        pool.store(lvl.add(L_NB), nbuckets);
        pool.store(lvl.add(L_CURSOR), 0);
        for i in 0..nbuckets {
            let head = alloc(1);
            let tail = alloc(1);
            pool.store(head.add(N_KEY), KEY_MIN);
            pool.store(head.add(N_NEXT), tail.raw());
            pool.store(head.add(N_INFO), 0);
            pool.store(head.add(N_VAL), 0);
            pool.store(tail.add(N_KEY), KEY_MAX);
            pool.store(tail.add(N_NEXT), 0);
            pool.store(tail.add(N_INFO), 0);
            pool.store(tail.add(N_VAL), 0);
            pool.store(lvl.add(L_BUCKETS + i), head.raw());
            pool.pwb(head, S_NEW);
            pool.pwb(tail, S_NEW);
        }
        pool.pwb_range(lvl, nwords as usize, S_LEVEL);
        lvl
    }

    fn bucket_head(&self, lvl: PAddr, key: u64) -> PAddr {
        let pool = &*self.pool;
        let nb = pool.load(lvl.add(L_NB));
        let idx = splitmix64(key) & (nb - 1);
        PAddr::from_raw(pool.load(lvl.add(L_BUCKETS + idx)))
    }

    /// The list `Search` scoped to one bucket chain.
    fn search_from(&self, head: PAddr, key: u64) -> SearchRes {
        let pool = &*self.pool;
        // Fence-coalescing region over the bucket traversal (see
        // `pmem::flushopt`): helper re-flushes of already-clean chain lines
        // may elide here.
        let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
        let mut pred = PAddr::NULL;
        let mut pred_info = 0;
        let mut curr = head;
        let mut curr_info = pool.load(curr.add(N_INFO));
        let head_info0 = curr_info;
        let mut traversed = 0u64;
        while pool.load(curr.add(N_KEY)) < key {
            pred = curr;
            pred_info = curr_info;
            curr = PAddr::from_raw(pool.load(curr.add(N_NEXT)));
            curr_info = pool.load(curr.add(N_INFO));
            traversed += 1;
        }
        SearchRes {
            pred,
            curr,
            pred_info,
            curr_info,
            head_info0,
            traversed: traversed.saturating_sub(1), // don't count the head
        }
    }

    /// The recoverable-operation prologue (identical to the list's):
    /// persist `RD_q := ⊥` strictly before `CP_q := 1`.
    fn prologue(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        ctx.set_rd(0);
        pool.pbarrier(ctx.rd_addr(), 1, S_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), S_CP);
        pool.psync();
    }

    /// Returns the current level, first driving any pending resize to
    /// completion (cooperative full-help: user operations never run
    /// two-level routing).
    fn current_level(&self, ctx: &ThreadCtx) -> PAddr {
        let pool = &*self.pool;
        loop {
            if pool.load(self.header.add(H_NEXT)) == 0 {
                return PAddr::from_raw(pool.load(self.header.add(H_CURR)));
            }
            // Flush-on-read: the publish we observed may not be durable
            // yet, but our migration effects are about to be. Persist the
            // header first so no crash can orphan a half-drained level.
            pool.pwb(self.header, S_LEVEL);
            pool.psync();
            self.drive_resize(ctx);
        }
    }

    /// Validates a read-only **absent** answer computed over `head`'s chain.
    /// An unchanged, untagged head stamp plus no pending resize proves the
    /// key could not have been migrated to another level before the
    /// traversal began (every move out of a bucket drains its first node
    /// and so bumps the head stamp; a finished resize leaves the head
    /// sealed, i.e. tagged). Helping a tagged head is required for progress
    /// when its tag is an orphan of a crashed operation.
    fn absent_still_valid(&self, head: PAddr, head_info0: u64) -> bool {
        let pool = &*self.pool;
        let now = pool.load(head.add(N_INFO));
        if is_tagged(now) {
            help(pool, Desc::from_raw(now));
            return false;
        }
        now == head_info0 && pool.load(self.header.add(H_NEXT)) == 0
    }

    // ------------------------------------------------------------------
    // Put
    // ------------------------------------------------------------------

    /// Binds `key` to `val` if absent; returns `false` (and changes
    /// nothing) if the key was already bound.
    pub fn put(&self, ctx: &ThreadCtx, key: u64, val: u64) -> bool {
        ctx.begin_op(S_CP);
        self.put_started(ctx, key, val)
    }

    /// [`Self::put`] without the system's `CP_q := 0` pre-step (for
    /// harnesses that call [`ThreadCtx::begin_op`] themselves).
    pub fn put_started(&self, ctx: &ThreadCtx, key: u64, val: u64) -> bool {
        Self::assert_user_kv(key, val);
        let pool = &*self.pool;
        // The new nodes are allocated once and reused across attempts (they
        // are only published by a successful tagging phase).
        let newcurr = ctx.palloc(1);
        let newnd = ctx.palloc(1);
        self.prologue(ctx);
        loop {
            let lvl = self.current_level(ctx);
            let head = self.bucket_head(lvl, key);
            let s = self.search_from(head, key);
            if is_tagged(s.pred_info) {
                help(pool, Desc::from_raw(s.pred_info));
                continue;
            }
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            // Stale-level guard: if a resize started before our gather, the
            // key may already live in the next level and our absence
            // evidence is void. (A resize that *finished* in that window is
            // caught by the tag CAS instead: a drained node is tagged
            // forever and a sealed head is tagged forever.)
            if pool.load(self.header.add(H_NEXT)) != 0 {
                continue;
            }
            if s.traversed > self.cfg.max_chain {
                self.start_resize(ctx, lvl);
                continue;
            }
            let desc = Desc::alloc(pool);
            // newcurr becomes a copy of curr (tagged with opInfo); the
            // gathered curr_info validates these reads at tagging time.
            pool.store(newcurr.add(N_KEY), pool.load(s.curr.add(N_KEY)));
            pool.store(newcurr.add(N_NEXT), pool.load(s.curr.add(N_NEXT)));
            pool.store(newcurr.add(N_INFO), desc.tagged());
            pool.store(newcurr.add(N_VAL), pool.load(s.curr.add(N_VAL)));
            pool.store(newnd.add(N_KEY), key);
            pool.store(newnd.add(N_NEXT), newcurr.raw());
            pool.store(newnd.add(N_INFO), desc.tagged());
            pool.store(newnd.add(N_VAL), val);
            let dup = pool.load(s.curr.add(N_KEY)) == key;
            if dup {
                // Read-only outcome (a presence answer: valid by curr's own
                // untagged stamp, no resize validation needed).
                desc.init(
                    pool,
                    OP_PUT,
                    enc_bool(false),
                    &[AffectEntry {
                        info_addr: s.curr.add(N_INFO),
                        observed: s.curr_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                desc.set_result(pool, enc_bool(false));
            } else {
                desc.init(
                    pool,
                    OP_PUT,
                    enc_bool(true),
                    &[
                        AffectEntry {
                            info_addr: s.pred.add(N_INFO),
                            observed: s.pred_info,
                            untag_on_cleanup: true,
                        },
                        AffectEntry {
                            info_addr: s.curr.add(N_INFO),
                            observed: s.curr_info,
                            // curr is replaced by its copy: tagged forever
                            untag_on_cleanup: false,
                        },
                    ],
                    &[WriteEntry {
                        field: s.pred.add(N_NEXT),
                        old: s.curr.raw(),
                        new: newnd.raw(),
                    }],
                    &[newcurr.add(N_INFO), newnd.add(N_INFO)],
                );
            }
            pool.pwb(newcurr, S_NEW);
            pool.pwb(newnd, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            if dup {
                ctx.retire(newcurr, 1);
                ctx.retire(newnd, 1);
                return false;
            }
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                // r can only be the success result here.
                ctx.retire(s.curr, 1);
                return true;
            }
        }
    }

    /// `Put.Recover`: returns the recorded response if the interrupted put
    /// demonstrably took effect, else re-invokes it.
    pub fn recover_put(&self, ctx: &ThreadCtx, key: u64, val: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r == TRUE,
            None => self.put(ctx, key, val),
        }
    }

    // ------------------------------------------------------------------
    // Remove
    // ------------------------------------------------------------------

    /// Removes `key`; returns the value it was bound to, or `None` if it
    /// was absent.
    pub fn remove(&self, ctx: &ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op(S_CP);
        self.remove_started(ctx, key)
    }

    /// [`Self::remove`] without the system's `CP_q := 0` pre-step.
    pub fn remove_started(&self, ctx: &ThreadCtx, key: u64) -> Option<u64> {
        Self::assert_user_kv(key, 0);
        let pool = &*self.pool;
        self.prologue(ctx);
        loop {
            let lvl = self.current_level(ctx);
            let head = self.bucket_head(lvl, key);
            let s = self.search_from(head, key);
            if is_tagged(s.pred_info) {
                help(pool, Desc::from_raw(s.pred_info));
                continue;
            }
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            let absent = pool.load(s.curr.add(N_KEY)) != key;
            if absent {
                // An absent answer over a bucket that may have been drained
                // into another level is void: validate *before* publishing.
                if !self.absent_still_valid(head, s.head_info0) {
                    continue;
                }
                let desc = Desc::alloc(pool);
                desc.init(
                    pool,
                    OP_REMOVE,
                    FALSE,
                    &[AffectEntry {
                        info_addr: s.curr.add(N_INFO),
                        observed: s.curr_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                desc.set_result(pool, FALSE);
                desc.pbarrier(pool, S_DESC);
                ctx.set_rd(desc.raw());
                pool.pwb(ctx.rd_addr(), S_RD);
                pool.psync();
                return None;
            }
            // Present: unlink curr; its gathered value becomes the response
            // (immutable while bound, so the stamp CAS validates it too).
            let succ = pool.load(s.curr.add(N_NEXT));
            let val = pool.load(s.curr.add(N_VAL));
            let desc = Desc::alloc(pool);
            desc.init(
                pool,
                OP_REMOVE,
                enc_val(val),
                &[
                    AffectEntry {
                        info_addr: s.pred.add(N_INFO),
                        observed: s.pred_info,
                        untag_on_cleanup: true,
                    },
                    AffectEntry {
                        info_addr: s.curr.add(N_INFO),
                        observed: s.curr_info,
                        untag_on_cleanup: false, // removed: tagged forever
                    },
                ],
                &[WriteEntry {
                    field: s.pred.add(N_NEXT),
                    old: s.curr.raw(),
                    new: succ,
                }],
                &[],
            );
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                ctx.retire(s.curr, 1);
                return Some(dec_val(r));
            }
        }
    }

    /// `Remove.Recover`: returns the recorded response if the interrupted
    /// remove demonstrably took effect, else re-invokes it.
    pub fn recover_remove(&self, ctx: &ThreadCtx, key: u64) -> Option<u64> {
        match self.recover_update(ctx) {
            Some(FALSE) => None,
            Some(r) => Some(dec_val(r)),
            None => self.remove(ctx, key),
        }
    }

    /// Common recovery body: `Some(raw result)` if the interrupted
    /// operation demonstrably took effect, `None` if it must be re-invoked.
    fn recover_update(&self, ctx: &ThreadCtx) -> Option<u64> {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return None;
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        let r = desc.result(pool);
        if r != BOTTOM {
            Some(r)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Get
    // ------------------------------------------------------------------

    /// Looks `key` up. Read-only; never tags a node.
    pub fn get(&self, ctx: &ThreadCtx, key: u64) -> Option<u64> {
        Self::assert_user_kv(key, 0);
        let pool = &*self.pool;
        let desc = Desc::alloc(pool);
        loop {
            let lvl = self.current_level(ctx);
            let head = self.bucket_head(lvl, key);
            let s = self.search_from(head, key);
            if is_tagged(s.pred_info) {
                help(pool, Desc::from_raw(s.pred_info));
                continue;
            }
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            let found = pool.load(s.curr.add(N_KEY)) == key;
            let val = pool.load(s.curr.add(N_VAL));
            if !found && !self.absent_still_valid(head, s.head_info0) {
                continue;
            }
            let res = if found { enc_val(val) } else { FALSE };
            desc.init(
                pool,
                OP_GET,
                res,
                &[AffectEntry {
                    info_addr: s.curr.add(N_INFO),
                    observed: s.curr_info,
                    untag_on_cleanup: true,
                }],
                &[],
                &[],
            );
            desc.set_result(pool, res);
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            return if found { Some(val) } else { None };
        }
    }

    /// `Get.Recover`: a get is read-only, so recovery simply re-executes it.
    pub fn recover_get(&self, ctx: &ThreadCtx, key: u64) -> Option<u64> {
        self.get(ctx, key)
    }

    // ------------------------------------------------------------------
    // Resize
    // ------------------------------------------------------------------

    /// Builds a doubled level and publishes it as the header's `next`, then
    /// drives the migration to completion. Losing the publish race retires
    /// the unused sentinels and helps the winner instead.
    fn start_resize(&self, ctx: &ThreadCtx, oldl: PAddr) {
        let pool = &*self.pool;
        if pool.load(self.header.add(H_NEXT)) != 0
            || pool.load(self.header.add(H_CURR)) != oldl.raw()
        {
            return; // superseded; the caller's loop re-routes
        }
        let nb = pool.load(oldl.add(L_NB)) * 2;
        let mut alloc = |n: usize| ctx.palloc(n);
        let newl = Self::build_level(pool, &mut alloc, nb);
        pool.pfence(); // the level is durable before it can be reachable
        if pool.cas(self.header.add(H_NEXT), 0, newl.raw()).is_ok() {
            pool.pwb(self.header, S_LEVEL);
            pool.psync();
        } else {
            // Lost the race: our level was never published. The directory
            // block is bump-leaked (bounded: level blocks total < 2x the
            // final directory), the sentinels recycle.
            for i in 0..nb {
                let head = PAddr::from_raw(pool.load(newl.add(L_BUCKETS + i)));
                let tail = PAddr::from_raw(pool.load(head.add(N_NEXT)));
                ctx.retire(head, 1);
                ctx.retire(tail, 1);
            }
        }
        self.drive_resize(ctx);
    }

    /// Drives one pending resize generation: drains every old bucket in
    /// cursor order, then flips the header. Safe to run any number of
    /// times, concurrently, by any thread; restartable from any crash
    /// point. Precondition: the `next` pointer it acts on is durable
    /// (publisher psync, or flush-on-read in [`Self::current_level`]).
    fn drive_resize(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        let nxt = pool.load(self.header.add(H_NEXT));
        if nxt == 0 {
            return;
        }
        let curr = pool.load(self.header.add(H_CURR));
        if curr != nxt {
            let oldl = PAddr::from_raw(curr);
            let newl = PAddr::from_raw(nxt);
            let nb_old = pool.load(oldl.add(L_NB));
            loop {
                let c = pool.load(newl.add(L_CURSOR));
                if c >= nb_old {
                    break;
                }
                self.migrate_bucket(ctx, oldl, newl, c);
                let _ = pool.cas(newl.add(L_CURSOR), c, c + 1);
                pool.pwb(newl.add(L_CURSOR), S_CURSOR);
            }
            // Finish, step 1: the new level becomes current. The cursor's
            // trailing flush must complete first — its line is part of the
            // level block being published.
            pool.pfence();
            let _ = pool.cas(self.header.add(H_CURR), curr, nxt);
            pool.pwb(self.header, S_LEVEL);
            pool.psync();
        }
        // Finish, step 2: clear the pending pointer. Both header words are
        // on one line, so a crash between the psyncs resolves to either
        // "resize pending, already drained" (helpers re-run the idempotent
        // finish) or "done".
        let _ = pool.cas(self.header.add(H_NEXT), nxt, 0);
        pool.pwb(self.header, S_LEVEL);
        pool.psync();
    }

    /// Drains old bucket `i` into the new level: repeatedly moves the first
    /// chain node with an `OP_MOVE` descriptor, then seals the empty bucket
    /// with an `OP_SEAL` descriptor (tagging the head forever). Returns
    /// once the bucket is sealed.
    fn migrate_bucket(&self, ctx: &ThreadCtx, oldl: PAddr, newl: PAddr, i: u64) {
        let pool = &*self.pool;
        let head = PAddr::from_raw(pool.load(oldl.add(L_BUCKETS + i)));
        loop {
            let hinfo = pool.load(head.add(N_INFO));
            if is_tagged(hinfo) {
                let d = Desc::from_raw(hinfo);
                help(pool, d);
                if d.op_type(pool) == OP_SEAL {
                    return; // someone sealed it: bucket done
                }
                continue;
            }
            let first = PAddr::from_raw(pool.load(head.add(N_NEXT)));
            if pool.load(first.add(N_KEY)) == KEY_MAX {
                // Empty chain: seal. The tag CAS succeeds only if the head
                // stamp is still `hinfo`, i.e. the bucket stayed empty.
                let d = Desc::alloc(pool);
                d.init(
                    pool,
                    OP_SEAL,
                    TRUE,
                    &[AffectEntry {
                        info_addr: head.add(N_INFO),
                        observed: hinfo,
                        untag_on_cleanup: false, // sealed forever
                    }],
                    &[],
                    &[],
                );
                d.pbarrier(pool, S_DESC);
                help(pool, d);
                if d.result(pool) != BOTTOM {
                    // We sealed it: the frozen sentinels recycle (drained
                    // only at quiescence, like every retired node).
                    ctx.retire(head, 1);
                    ctx.retire(first, 1);
                    return;
                }
                continue;
            }
            // Move `first`. Gather its fields *after* its stamp: the tag
            // CAS expecting `finfo` validates them all.
            let finfo = pool.load(first.add(N_INFO));
            if is_tagged(finfo) {
                help(pool, Desc::from_raw(finfo));
                continue;
            }
            let key = pool.load(first.add(N_KEY));
            let val = pool.load(first.add(N_VAL));
            let succ = pool.load(first.add(N_NEXT));
            let nhead = self.bucket_head(newl, key);
            let s = self.search_from(nhead, key);
            if is_tagged(s.pred_info) {
                help(pool, Desc::from_raw(s.pred_info));
                continue;
            }
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            let d = Desc::alloc(pool);
            if pool.load(s.curr.add(N_KEY)) == key {
                // Defensive: the key is already in the new level (a remnant
                // of an interrupted move of this very node). Unlink only.
                d.init(
                    pool,
                    OP_MOVE,
                    TRUE,
                    &[
                        AffectEntry {
                            info_addr: head.add(N_INFO),
                            observed: hinfo,
                            untag_on_cleanup: true,
                        },
                        AffectEntry {
                            info_addr: first.add(N_INFO),
                            observed: finfo,
                            untag_on_cleanup: false, // drained: tagged forever
                        },
                    ],
                    &[WriteEntry {
                        field: head.add(N_NEXT),
                        old: first.raw(),
                        new: succ,
                    }],
                    &[],
                );
                d.pbarrier(pool, S_DESC);
                help(pool, d);
                if d.result(pool) != BOTTOM {
                    ctx.retire(first, 1);
                }
                continue;
            }
            // The WriteSet links the copy into the new level *before*
            // unlinking the original: the key is transiently in both levels
            // (benign for presence answers) but never in neither.
            let newnd = ctx.palloc(1);
            pool.store(newnd.add(N_KEY), key);
            pool.store(newnd.add(N_NEXT), s.curr.raw());
            pool.store(newnd.add(N_INFO), d.tagged());
            pool.store(newnd.add(N_VAL), val);
            d.init(
                pool,
                OP_MOVE,
                TRUE,
                &[
                    AffectEntry {
                        info_addr: head.add(N_INFO),
                        observed: hinfo,
                        untag_on_cleanup: true,
                    },
                    AffectEntry {
                        info_addr: first.add(N_INFO),
                        observed: finfo,
                        untag_on_cleanup: false, // drained: tagged forever
                    },
                    AffectEntry {
                        info_addr: s.pred.add(N_INFO),
                        observed: s.pred_info,
                        untag_on_cleanup: true,
                    },
                ],
                &[
                    WriteEntry {
                        field: s.pred.add(N_NEXT),
                        old: s.curr.raw(),
                        new: newnd.raw(),
                    },
                    WriteEntry {
                        field: head.add(N_NEXT),
                        old: first.raw(),
                        new: succ,
                    },
                ],
                &[newnd.add(N_INFO)],
            );
            pool.pwb(newnd, S_NEW);
            d.pbarrier(pool, S_DESC);
            help(pool, d);
            if d.result(pool) != BOTTOM {
                ctx.retire(first, 1);
            } else {
                ctx.retire(newnd, 1); // never published
            }
        }
    }

    // ------------------------------------------------------------------
    // Quiescent inspection helpers (tests, examples, validation)
    // ------------------------------------------------------------------

    /// Number of bound keys. Only meaningful while no operation (or
    /// resize) is in flight.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Is the map empty? (Quiescent.)
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects the `(key, value)` pairs sorted by key. (Quiescent.)
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let pool = &*self.pool;
        let lvl = PAddr::from_raw(pool.load(self.header.add(H_CURR)));
        let nb = pool.load(lvl.add(L_NB));
        let mut out = Vec::new();
        for i in 0..nb {
            let head = PAddr::from_raw(pool.load(lvl.add(L_BUCKETS + i)));
            let mut curr = PAddr::from_raw(pool.load(head.add(N_NEXT)));
            loop {
                let k = pool.load(curr.add(N_KEY));
                if k == KEY_MAX {
                    break;
                }
                out.push((k, pool.load(curr.add(N_VAL))));
                curr = PAddr::from_raw(pool.load(curr.add(N_NEXT)));
            }
        }
        out.sort_unstable();
        out
    }

    /// Checks structural invariants (quiescent): no pending resize, every
    /// chain strictly sorted, every key in its hash bucket, no reachable
    /// node left tagged. Returns the number of bound keys.
    pub fn check_invariants(&self) -> usize {
        let pool = &*self.pool;
        assert_eq!(
            pool.load(self.header.add(H_NEXT)),
            0,
            "quiescent map must have no pending resize"
        );
        let lvl = PAddr::from_raw(pool.load(self.header.add(H_CURR)));
        let nb = pool.load(lvl.add(L_NB));
        assert!(nb.is_power_of_two());
        let mut count = 0;
        for i in 0..nb {
            let head = PAddr::from_raw(pool.load(lvl.add(L_BUCKETS + i)));
            assert!(
                !is_tagged(pool.load(head.add(N_INFO))),
                "current-level bucket {i} head must not be sealed/tagged"
            );
            let mut prev_key = KEY_MIN;
            let mut curr = PAddr::from_raw(pool.load(head.add(N_NEXT)));
            loop {
                let k = pool.load(curr.add(N_KEY));
                assert!(k > prev_key, "bucket {i}: keys strictly increasing");
                assert!(
                    !is_tagged(pool.load(curr.add(N_INFO))),
                    "quiescent chain must hold no tagged node (bucket {i}, key {k})"
                );
                if k == KEY_MAX {
                    break;
                }
                assert_eq!(
                    splitmix64(k) & (nb - 1),
                    i,
                    "key {k} hashed to the wrong bucket"
                );
                prev_key = k;
                count += 1;
                curr = PAddr::from_raw(pool.load(curr.add(N_NEXT)));
            }
        }
        count
    }

    /// Bucket count of the current level (for tests asserting growth).
    pub fn bucket_count(&self) -> u64 {
        let pool = &*self.pool;
        let lvl = PAddr::from_raw(pool.load(self.header.add(H_CURR)));
        pool.load(lvl.add(L_NB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};
    use std::collections::BTreeMap;

    fn setup_cfg(cfg: HashMapConfig) -> (Arc<PmemPool>, RecoverableHashMap, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
        let map = RecoverableHashMap::with_config(pool.clone(), 0, cfg);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, map, ctx)
    }

    fn setup() -> (Arc<PmemPool>, RecoverableHashMap, ThreadCtx) {
        setup_cfg(HashMapConfig::default())
    }

    /// Tiny directory + short chains: resizes trigger within a few puts.
    fn aggressive() -> HashMapConfig {
        HashMapConfig {
            initial_buckets: 2,
            max_chain: 2,
        }
    }

    #[test]
    fn empty_map_invariants() {
        let (_p, map, _ctx) = setup();
        assert_eq!(map.check_invariants(), 0);
        assert!(map.entries().is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn put_get_remove_basics() {
        let (_p, map, ctx) = setup();
        assert_eq!(map.get(&ctx, 10), None);
        assert!(map.put(&ctx, 10, 1000));
        assert_eq!(map.get(&ctx, 10), Some(1000));
        assert!(!map.put(&ctx, 10, 2000), "duplicate put fails");
        assert_eq!(map.get(&ctx, 10), Some(1000), "and does not overwrite");
        assert_eq!(map.remove(&ctx, 10), Some(1000));
        assert_eq!(map.get(&ctx, 10), None);
        assert_eq!(map.remove(&ctx, 10), None, "absent remove");
        assert_eq!(map.check_invariants(), 0);
    }

    #[test]
    fn grows_through_multiple_levels() {
        let (_p, map, ctx) = setup_cfg(aggressive());
        assert_eq!(map.bucket_count(), 2);
        for k in 1..=64u64 {
            assert!(map.put(&ctx, k, k * 10));
        }
        assert!(map.bucket_count() > 2, "table must have resized");
        assert_eq!(map.check_invariants(), 64);
        for k in 1..=64u64 {
            assert_eq!(map.get(&ctx, k), Some(k * 10), "key {k} after resizes");
        }
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, map, ctx) = setup_cfg(aggressive());
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = 0x12345u64;
        for _ in 0..3000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            let val = (rng >> 13) % 1000 + 1;
            match (rng >> 20) % 3 {
                0 => {
                    let fresh = !model.contains_key(&key);
                    if fresh {
                        model.insert(key, val);
                    }
                    assert_eq!(map.put(&ctx, key, val), fresh, "put {key}");
                }
                1 => assert_eq!(map.remove(&ctx, key), model.remove(&key), "remove {key}"),
                _ => assert_eq!(map.get(&ctx, key), model.get(&key).copied(), "get {key}"),
            }
        }
        assert_eq!(
            map.entries(),
            model.into_iter().collect::<Vec<_>>(),
            "final contents"
        );
        map.check_invariants();
    }

    #[test]
    fn flush_discipline_is_lint_clean_including_resizes() {
        let pool = Arc::new(PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(32 << 20)
        }));
        let map = RecoverableHashMap::with_config(pool.clone(), 0, aggressive());
        let ctx = ThreadCtx::new(pool.clone(), 0);
        pool.lint_clear();
        let mut rng = 0xC0FFEEu64;
        for _ in 0..300 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 40 + 1;
            match (rng >> 20) % 3 {
                0 => {
                    map.put(&ctx, key, key);
                }
                1 => {
                    map.remove(&ctx, key);
                }
                _ => {
                    map.get(&ctx, key);
                }
            }
        }
        assert!(map.bucket_count() > 2, "workload must have resized");
        let r = pool.lint_report();
        assert!(
            r.is_clean(),
            "hashmap flush discipline violations:\n{}",
            pool.lint_report_text()
        );
    }

    #[test]
    fn reattach_finds_existing_map() {
        let (p, map, ctx) = setup_cfg(aggressive());
        for k in 1..=20u64 {
            map.put(&ctx, k, k + 100);
        }
        let map2 = RecoverableHashMap::new(p, 0);
        assert_eq!(map2.check_invariants(), 20);
        assert_eq!(map2.get(&ctx, 7), Some(107));
    }

    #[test]
    fn rd_points_to_last_op_descriptor() {
        let (p, map, ctx) = setup();
        map.put(&ctx, 7, 70);
        let d = Desc::from_raw(ctx.rd());
        assert_eq!(d.op_type(&p), OP_PUT);
        assert_eq!(d.result(&p), enc_bool(true));
        assert_eq!(map.remove(&ctx, 7), Some(70));
        let d = Desc::from_raw(ctx.rd());
        assert_eq!(d.op_type(&p), OP_REMOVE);
        assert_eq!(d.result(&p), enc_val(70));
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, map, ctx) = setup();
        assert!(map.put(&ctx, 9, 90));
        // Crash struck after the return value was computed but before the
        // caller consumed it: recover must reproduce `true`, not re-put.
        assert!(map.recover_put(&ctx, 9, 90));
        assert_eq!(map.entries(), vec![(9, 90)], "no double put");
        assert_eq!(map.remove(&ctx, 9), Some(90));
        assert_eq!(map.recover_remove(&ctx, 9), Some(90));
        assert!(map.is_empty());
    }

    fn crash_swept_put(cfg: HashMapConfig, prefill: u64, bound: u64) {
        // Crash a put at every instrumented event; after recovery the
        // response must agree with the map's state. With `prefill` sized to
        // leave the trigger chain one short of `max_chain`, the swept put
        // drives a full resize, so every migration step gets crashed too.
        for crash_at in 0..bound {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let map = RecoverableHashMap::with_config(pool.clone(), 0, cfg);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            for k in 1..=prefill {
                assert!(map.put(&ctx, k, k));
            }
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| map.put_started(&ctx, 100, 42));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert_eq!(map.check_invariants(), prefill as usize + 1);
                    return;
                }
                None => {
                    let r = map.recover_put(&ctx, 100, 42);
                    assert!(r, "recovered put of a fresh key must succeed");
                    assert_eq!(map.get(&ctx, 100), Some(42), "crash_at={crash_at}");
                    assert_eq!(
                        map.check_invariants(),
                        prefill as usize + 1,
                        "crash_at={crash_at}"
                    );
                }
            }
        }
        panic!("sweep did not terminate: operation needs more than {bound} events");
    }

    #[test]
    fn crash_swept_put_recovers_detectably() {
        crash_swept_put(HashMapConfig::default(), 0, 2000);
    }

    #[test]
    fn crash_swept_put_through_resize_recovers_detectably() {
        // 12 keys in 2 buckets: the swept put's traversal exceeds
        // max_chain=2 and triggers (at least) a 2→4 resize mid-operation.
        crash_swept_put(aggressive(), 12, 30000);
    }

    #[test]
    fn crash_swept_remove_recovers_detectably() {
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let map = RecoverableHashMap::with_config(pool.clone(), 0, aggressive());
            let ctx = ThreadCtx::new(pool.clone(), 0);
            for k in 1..=6u64 {
                assert!(map.put(&ctx, k, k * 7));
            }
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| map.remove_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert_eq!(r, Some(35));
                    assert_eq!(map.check_invariants(), 5);
                    return;
                }
                None => {
                    let r = map.recover_remove(&ctx, 5);
                    assert_eq!(r, Some(35), "crash_at={crash_at}");
                    assert_eq!(map.get(&ctx, 5), None, "crash_at={crash_at}");
                    assert_eq!(map.check_invariants(), 5, "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_get_reexecutes() {
        for crash_at in [2u64, 5, 9, 14, 20, 35, 60] {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let map = RecoverableHashMap::new(pool.clone(), 0);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(map.put(&ctx, 5, 55));
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| map.get(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            let r = match pre {
                Some(r) => r,
                None => map.recover_get(&ctx, 5),
            };
            assert_eq!(r, Some(55), "crash_at={crash_at}");
            map.check_invariants();
        }
    }

    #[test]
    fn concurrent_puts_distinct_keys() {
        let (p, map, _ctx) = setup_cfg(aggressive());
        let mut handles = vec![];
        for t in 0..4u64 {
            let map = map.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let k = t * 1000 + i + 1;
                    assert!(map.put(&ctx, k, k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.check_invariants(), 200);
        assert!(map.bucket_count() > 2, "concurrent load must have resized");
    }

    #[test]
    fn contending_puts_same_key_exactly_one_wins() {
        let (p, map, _ctx) = setup();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        let mut handles = vec![];
        for t in 0..4usize {
            let map = map.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                map.put(&ctx, 77, t as u64 + 1)
            }));
        }
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1, "exactly one concurrent put of one key succeeds");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn concurrent_mixed_ops_with_resizes_preserve_invariants() {
        let (p, map, _ctx) = setup_cfg(aggressive());
        let mut handles = vec![];
        for t in 0..4usize {
            let map = map.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..400 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 64 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            map.put(&ctx, key, key);
                        }
                        1 => {
                            map.remove(&ctx, key);
                        }
                        _ => {
                            map.get(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        map.check_invariants();
        assert!(map.bucket_count() > 2);
    }

    #[test]
    fn migrated_nodes_recycle_on_reclaim_pool() {
        // Phase 1 on both pools: identical growth through several resizes.
        // Phase 2: churn. On the reclaim pool the nodes retired by phase 1's
        // migrations (moved-out originals, sealed sentinels) and by the
        // removes must be re-issued, so its arena consumption stays well
        // under the bump pool's.
        let mk = |reclaim: bool| {
            let pool = Arc::new(PmemPool::new(PoolCfg {
                reclaim,
                ..PoolCfg::model(32 << 20)
            }));
            let map = RecoverableHashMap::with_config(pool.clone(), 0, aggressive());
            let ctx = ThreadCtx::new(pool.clone(), 0);
            for k in 1..=48u64 {
                assert!(map.put(&ctx, k, k));
            }
            pool.palloc_drain_all();
            (pool, map, ctx)
        };
        let consumed = |reclaim: bool| {
            let (pool, map, ctx) = mk(reclaim);
            let before = pool.remaining_lines();
            for round in 0..6u64 {
                for k in 1..=48u64 {
                    assert_eq!(map.remove(&ctx, k), Some(k));
                }
                pool.palloc_drain_all();
                for k in 1..=48u64 {
                    assert!(map.put(&ctx, k, k), "round {round}");
                }
                pool.palloc_drain_all();
            }
            pool.palloc_check().expect("allocator integrity");
            map.check_invariants();
            before - pool.remaining_lines()
        };
        let bump = consumed(false);
        let reclaimed = consumed(true);
        // Descriptors are bump-allocated forever on both pools; the entire
        // difference is recycled node lines (2 per put x 48 keys x 6 rounds).
        assert!(
            bump - reclaimed >= 48 * 2 * 6,
            "reclaim pool must recycle retired nodes (consumed {reclaimed} vs bump {bump})"
        );
        // And the free lists stocked by phase 1 are fed by the *migrations*
        // (moved-out originals, sealed sentinels), not only by the puts'
        // replaced-successor retirees — at most 48 of those exist. Bump
        // addresses are monotone, so a palloc returning an address below a
        // freshly taken bump watermark was served from a free list.
        let (pool, _map, ctx) = mk(true);
        let wm = pool.alloc_lines(1);
        let recycled = (0..120).filter(|_| ctx.palloc(1).0 < wm.0).count();
        assert!(
            recycled > 48,
            "free list after growth must hold migration-retired blocks, not \
             just put-replacement retirees ({recycled} of 120 recycled)"
        );
    }

    #[test]
    #[should_panic(expected = "between the sentinels")]
    fn sentinel_keys_rejected() {
        let (_p, map, ctx) = setup();
        map.put(&ctx, KEY_MAX, 1);
    }
}
