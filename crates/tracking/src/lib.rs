//! # tracking — detectable recovery of lock-free data structures
//!
//! A from-scratch Rust implementation of the **Tracking** approach of
//! *Detectable Recovery of Lock-Free Data Structures* (Attiya, Ben-Baruch,
//! Fatourou, Hendler, Kosmas — PPoPP 2022), over the simulated NVMM of the
//! [`pmem`] crate.
//!
//! ## The approach in one paragraph
//!
//! Each operation `Op` carries an *operation descriptor* ([`descriptor::Desc`])
//! recording everything needed to finish it: the **AffectSet** (the nodes Op
//! will update/delete, as `(info-field, observed-value)` pairs), the
//! **WriteSet** (field → old/new CAS triples), the **NewSet** (freshly
//! allocated nodes, born tagged), and a `result` field initialized to ⊥.
//! Execution proceeds in phases — *gather*, *helping*, *tagging*, *update*,
//! *cleanup* — driven by the idempotent [`help::help`] engine (the paper's
//! Algorithm 2). Tagging installs a pointer to the descriptor, with its
//! least-significant bit set, into each affected node's `info` field ("a
//! soft lock"); a failed tag backtracks and retries. Crucially, an `info`
//! field acts as a *version stamp*: its value moves monotonically through
//! fresh descriptor addresses and never reverts, so a successful tagging CAS
//! against the gathered value certifies that the node is unchanged since the
//! gather — which is what makes `help` idempotent and recovery sound.
//!
//! Detectability comes from two persistent per-thread words (provided by
//! [`pmem::ThreadCtx`]): the check-point `CP_q` and the recovery-data
//! reference `RD_q`, persisted (lines 1–5 and 19–21 of Algorithm 1) so that
//! after a crash the recovery function can fetch the descriptor of the
//! interrupted operation, call `help` on it, and either return the recorded
//! result or safely re-invoke the operation.
//!
//! ## What is provided
//!
//! * [`list::RecoverableList`] — the detectably recoverable sorted linked
//!   list of Section 4 (Algorithms 3–4), including the read-only
//!   optimization for `find` and for already-present/absent keys.
//! * [`bst::RecoverableBst`] — the detectably recoverable leaf-oriented
//!   (external) binary search tree of Section 6 (Algorithms 5–6, Figure 7),
//!   derived from the Ellen-Fatourou-Ruppert-van Breugel LF-BST.
//! * [`exchanger::RecoverableExchanger`] — the detectably recoverable
//!   exchanger of Section 6 (capture / collide / cancel as Tracking
//!   operations).
//! * [`queue::RecoverableQueue`] — a detectably recoverable MS-style FIFO
//!   queue, an extra structure demonstrating the approach's generality.
//! * [`stack::RecoverableStack`] — a detectably recoverable Treiber-style
//!   LIFO stack (same engine, fourth shape).
//! * [`hashmap::RecoverableHashMap`] — a detectably recoverable,
//!   Clevel-style *resizable* hash table: bucket operations **and the
//!   resize protocol itself** (level publish, helped bucket migration,
//!   seal/finish) run through the Tracking machinery, so a resize is
//!   restartable from any crash point with no lost or duplicated keys.
//! * [`combining::CombiningQueue`] / [`combining::CombiningStack`] —
//!   detectable flat-combining variants of the queue and stack: one
//!   combiner applies a whole batch of announced operations and pays a
//!   single coalesced `pwb`/`psync` bill for the round (the PBComb-style
//!   alternative the paper's related work contrasts with).
//! * Per-operation recovery functions (`recover_insert`, …) implementing
//!   the paper's `Op.Recover` (Algorithm 1 lines 27–31).
//!
//! ## System contract
//!
//! The paper's system model persists `CP_q := 0` *before* an operation
//! starts (its footnote 1: "system support is necessary for designing
//! detectable algorithms"). The public operation methods perform that step
//! themselves via [`pmem::ThreadCtx::begin_op`]; the `*_started` variants
//! skip it for harnesses (like the crash tests) that play the system role
//! explicitly and must know exactly which persistent events belong to the
//! operation proper.

#![warn(missing_docs)]

pub mod bst;
pub mod combining;
pub mod descriptor;
pub mod exchanger;
pub mod hashmap;
pub mod help;
pub mod list;
pub mod queue;
pub mod result;
pub mod sites;
pub mod stack;

pub use bst::RecoverableBst;
pub use combining::{CombiningQueue, CombiningStack};
pub use exchanger::RecoverableExchanger;
pub use hashmap::RecoverableHashMap;
pub use list::RecoverableList;
pub use queue::RecoverableQueue;
pub use stack::RecoverableStack;
