//! A detectably recoverable FIFO queue derived with Tracking — an extra
//! structure beyond the paper's three, exercising the generic engine on a
//! Michael–Scott-style queue (the paper argues Tracking applies to "a large
//! collection of concurrent data structures"; recoverable queues are its
//! §7 point of comparison with Friedman et al.).
//!
//! Representation: a singly linked chain of `⟨value, next, info⟩` nodes.
//! A persistent root cell holds the **head sentinel** pointer; a second,
//! purely volatile hint accelerates locating the last node.
//!
//! * **Enqueue(v)** appends to the last node `L` (found by chasing `next`
//!   from the tail hint): AffectSet = `{L}` (stays in the chain ⇒ untag at
//!   cleanup), WriteSet = `{L.next: ⊥ → new}`, NewSet = `{new}`. Appending
//!   is safe even if `L` has already been consumed: the head pointer can
//!   only move *past* `L` after `L.next` is non-null, in which case the
//!   append CAS fails and the operation retries further down the chain.
//! * **Dequeue** consumes the successor `F` of the head sentinel `H` and
//!   makes `F` the new sentinel: AffectSet = `{H}` (leaves the structure ⇒
//!   tagged forever), WriteSet = `{head-cell: H → F}`, response =
//!   `F.value`. Competing dequeues serialize on `H`'s tag; the head cell
//!   CAS is ABA-free because sentinels advance through node addresses that
//!   are never reused *within an operation window* — fresh forever on the
//!   default bump pool, and on a `pmem::PoolCfg::reclaim` pool re-issued
//!   only after an epoch quiescence that no window spans (consumed
//!   sentinels are retired to `pmem::palloc` limbo; descriptors are never
//!   recycled, so info version stamps stay unique).
//! * **Empty dequeue** is a read-only outcome: gather `H` (untagged),
//!   observe `H.next = ⊥`, and re-validate that `H` is still the sentinel —
//!   head only moves forward, so the queue was empty at the observation.
//!
//! Recovery is the standard Op-Recover skeleton over `CP_q`/`RD_q`.

use std::sync::Arc;

use pmem::{is_tagged, PAddr, PmemPool, ThreadCtx};

use crate::descriptor::{AffectEntry, Desc, WriteEntry};
use crate::help::help;
use crate::result::{dec_val, enc_val, BOTTOM, FALSE};
use crate::sites::{S_CP, S_DESC, S_NEW, S_RD};

/// Descriptor op-type tag for enqueues.
pub const OP_ENQ: u8 = 10;
/// Descriptor op-type tag for dequeues.
pub const OP_DEQ: u8 = 11;

// Node layout (one cache line): w0 value, w1 next, w2 info.
const N_VALUE: u64 = 0;
const N_NEXT: u64 = 1;
const N_INFO: u64 = 2;

/// Largest enqueueable value (room for the result encoding).
pub const VALUE_MAX: u64 = u64::MAX - 4;

/// The detectably recoverable FIFO queue.
#[derive(Clone)]
pub struct RecoverableQueue {
    pool: Arc<PmemPool>,
    /// Persistent cell holding the head-sentinel pointer.
    head_cell: PAddr,
    /// Volatile-use cell holding a tail hint (never relied upon).
    tail_hint: PAddr,
}

impl RecoverableQueue {
    /// Creates a queue using root cells `root_idx` (head) and
    /// `root_idx + 1` (tail hint), or re-attaches.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize) -> Self {
        let head_cell = pool.root(root_idx);
        let tail_hint = pool.root(root_idx + 1);
        if pool.load(head_cell) == 0 {
            let sentinel = pool.alloc_lines(1);
            pool.pwb(sentinel, S_NEW);
            pool.pfence();
            pool.store(head_cell, sentinel.raw());
            pool.store(tail_hint, sentinel.raw());
            pool.pbarrier(head_cell, 1, S_NEW);
        }
        RecoverableQueue {
            pool,
            head_cell,
            tail_hint,
        }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn prologue(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        ctx.set_rd(0);
        pool.pbarrier(ctx.rd_addr(), 1, S_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), S_CP);
        pool.psync();
    }

    /// Chases `next` pointers from the tail hint to the last node, and the
    /// last node's `info` gathered on first access.
    fn find_last(&self) -> (PAddr, u64) {
        let pool = &*self.pool;
        let mut nd = PAddr::from_raw(pool.load(self.tail_hint));
        if nd.is_null() {
            nd = PAddr::from_raw(pool.load(self.head_cell));
        }
        loop {
            let next = pool.load(nd.add(N_NEXT));
            if next == 0 {
                let info = pool.load(nd.add(N_INFO));
                // re-check: still last after gathering the version stamp?
                if pool.load(nd.add(N_NEXT)) == 0 {
                    return (nd, info);
                }
            } else {
                nd = PAddr::from_raw(next);
            }
        }
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, ctx: &ThreadCtx, value: u64) {
        ctx.begin_op(S_CP);
        self.enqueue_started(ctx, value)
    }

    /// [`Self::enqueue`] without the system's `CP_q := 0` pre-step.
    pub fn enqueue_started(&self, ctx: &ThreadCtx, value: u64) {
        assert!(value <= VALUE_MAX, "value too large to encode");
        let pool = &*self.pool;
        // The new node is allocated once and reused across attempts.
        let new = ctx.palloc(1);
        pool.store(new.add(N_VALUE), value);
        self.prologue(ctx);
        loop {
            // Gather
            let (last, last_info) = self.find_last();
            // Helping
            if is_tagged(last_info) {
                help(pool, Desc::from_raw(last_info));
                continue;
            }
            let desc = Desc::alloc(pool);
            pool.store(new.add(N_INFO), desc.tagged());
            desc.init(
                pool,
                OP_ENQ,
                enc_val(value), // response of a successful enqueue: its value
                &[AffectEntry {
                    info_addr: last.add(N_INFO),
                    observed: last_info,
                    untag_on_cleanup: true,
                }],
                &[WriteEntry {
                    field: last.add(N_NEXT),
                    old: 0,
                    new: new.raw(),
                }],
                &[new.add(N_INFO)],
            );
            pool.pwb(new, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            if desc.result(pool) != BOTTOM {
                // best-effort tail hint (volatile semantics: safe to lose)
                pool.store(self.tail_hint, new.raw());
                return;
            }
        }
    }

    /// `Enqueue.Recover`.
    pub fn recover_enqueue(&self, ctx: &ThreadCtx, value: u64) {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return self.enqueue(ctx, value);
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        if desc.result(pool) == BOTTOM {
            self.enqueue(ctx, value)
        }
    }

    /// Removes and returns the oldest value, or `None` when empty.
    pub fn dequeue(&self, ctx: &ThreadCtx) -> Option<u64> {
        ctx.begin_op(S_CP);
        self.dequeue_started(ctx)
    }

    /// [`Self::dequeue`] without the system's `CP_q := 0` pre-step.
    pub fn dequeue_started(&self, ctx: &ThreadCtx) -> Option<u64> {
        let pool = &*self.pool;
        self.prologue(ctx);
        loop {
            // Gather
            let h = PAddr::from_raw(pool.load(self.head_cell));
            let h_info = pool.load(h.add(N_INFO));
            // Helping
            if is_tagged(h_info) {
                help(pool, Desc::from_raw(h_info));
                continue;
            }
            let next = pool.load(h.add(N_NEXT));
            let desc = Desc::alloc(pool);
            if next == 0 {
                // Read-only empty outcome; valid only if h is still the
                // sentinel (head moves forward only, so the queue was empty
                // at the observation of h.next).
                if pool.load(self.head_cell) != h.raw() {
                    continue;
                }
                desc.init(
                    pool,
                    OP_DEQ,
                    FALSE,
                    &[AffectEntry {
                        info_addr: h.add(N_INFO),
                        observed: h_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                desc.set_result(pool, FALSE);
                desc.pbarrier(pool, S_DESC);
                ctx.set_rd(desc.raw());
                pool.pwb(ctx.rd_addr(), S_RD);
                pool.psync();
                return None;
            }
            let f = PAddr::from_raw(next);
            let value = pool.load(f.add(N_VALUE)); // immutable once published
            desc.init(
                pool,
                OP_DEQ,
                enc_val(value),
                &[AffectEntry {
                    info_addr: h.add(N_INFO),
                    observed: h_info,
                    untag_on_cleanup: false, // h leaves the structure
                }],
                &[WriteEntry {
                    field: self.head_cell,
                    old: h.raw(),
                    new: f.raw(),
                }],
                &[],
            );
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                if r != FALSE {
                    // The head cell durably moved past h (help fenced the
                    // WriteSet CAS): the old sentinel is out of the chain.
                    // It keeps its tag; late dequeuers that gathered h
                    // still help through its intact info word.
                    ctx.retire(h, 1);
                }
                return if r == FALSE { None } else { Some(dec_val(r)) };
            }
        }
    }

    /// `Dequeue.Recover`.
    pub fn recover_dequeue(&self, ctx: &ThreadCtx) -> Option<u64> {
        let pool = &*self.pool;
        let rd = ctx.rd();
        if ctx.cp() == 0 || rd == 0 {
            return self.dequeue(ctx);
        }
        let desc = Desc::from_raw(rd);
        help(pool, desc);
        let r = desc.result(pool);
        if r == BOTTOM {
            self.dequeue(ctx)
        } else if r == FALSE {
            None
        } else {
            Some(dec_val(r))
        }
    }

    /// Values from head to tail (quiescent only).
    pub fn values(&self) -> Vec<u64> {
        let pool = &*self.pool;
        let mut out = Vec::new();
        let mut nd = PAddr::from_raw(pool.load(self.head_cell));
        loop {
            let next = pool.load(nd.add(N_NEXT));
            if next == 0 {
                return out;
            }
            nd = PAddr::from_raw(next);
            out.push(pool.load(nd.add(N_VALUE)));
        }
    }

    /// Number of queued values (quiescent only).
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Is the queue empty (quiescent only)?
    pub fn is_empty(&self) -> bool {
        self.pool
            .load(PAddr::from_raw(self.pool.load(self.head_cell)).add(N_NEXT))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};

    fn setup() -> (Arc<PmemPool>, RecoverableQueue, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let q = RecoverableQueue::new(pool.clone(), 4);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, q, ctx)
    }

    #[test]
    fn fifo_order() {
        let (_p, q, ctx) = setup();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(&ctx), None);
        for v in [3u64, 1, 4, 1, 5] {
            q.enqueue(&ctx, v);
        }
        assert_eq!(q.values(), vec![3, 1, 4, 1, 5]);
        assert_eq!(q.dequeue(&ctx), Some(3));
        assert_eq!(q.dequeue(&ctx), Some(1));
        q.enqueue(&ctx, 9);
        assert_eq!(q.values(), vec![4, 1, 5, 9]);
        for want in [4u64, 1, 5, 9] {
            assert_eq!(q.dequeue(&ctx), Some(want));
        }
        assert_eq!(q.dequeue(&ctx), None);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_and_refill_repeatedly() {
        let (_p, q, ctx) = setup();
        for round in 0..5u64 {
            for v in 0..20 {
                q.enqueue(&ctx, round * 100 + v);
            }
            for v in 0..20 {
                assert_eq!(q.dequeue(&ctx), Some(round * 100 + v));
            }
            assert_eq!(q.dequeue(&ctx), None, "round {round}");
        }
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let (p, q, _ctx) = setup();
        let produced: u64 = 2 * 300;
        let mut handles = vec![];
        for t in 0..2u64 {
            let q = q.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    q.enqueue(&ctx, t * 1000 + i);
                }
                Vec::new()
            }));
        }
        for t in 2..4u64 {
            let q = q.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 300 {
                    if let Some(v) = q.dequeue(&ctx) {
                        got.push(v);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, produced);
        all.sort_unstable();
        let mut want: Vec<u64> = (0..300u64).chain((0..300u64).map(|i| 1000 + i)).collect();
        want.sort_unstable();
        assert_eq!(all, want, "every produced value consumed exactly once");
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_fifo_preserved() {
        // one producer, one consumer: strict FIFO end to end
        let (p, q, _ctx) = setup();
        let prod = {
            let q = q.clone();
            let ctx = ThreadCtx::new(p.clone(), 0);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    q.enqueue(&ctx, i);
                }
            })
        };
        let cons = {
            let q = q.clone();
            let ctx = ThreadCtx::new(p.clone(), 1);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 500 {
                    if let Some(v) = q.dequeue(&ctx) {
                        got.push(v);
                    }
                }
                got
            })
        };
        prod.join().unwrap();
        let got = cons.join().unwrap();
        assert_eq!(got, (0..500u64).collect::<Vec<_>>());
    }

    #[test]
    fn crash_swept_enqueue_recovers_exactly_once() {
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let q = RecoverableQueue::new(pool.clone(), 4);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            q.enqueue(&ctx, 1);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| q.enqueue_started(&ctx, 2));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(()) => {
                    assert_eq!(q.values(), vec![1, 2]);
                    return;
                }
                None => {
                    q.recover_enqueue(&ctx, 2);
                    assert_eq!(
                        q.values(),
                        vec![1, 2],
                        "crash_at={crash_at}: exactly-once append"
                    );
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_dequeue_recovers_exactly_once() {
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let q = RecoverableQueue::new(pool.clone(), 4);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            q.enqueue(&ctx, 7);
            q.enqueue(&ctx, 8);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| q.dequeue_started(&ctx));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert_eq!(r, Some(7));
                    assert_eq!(q.values(), vec![8]);
                    return;
                }
                None => {
                    let r = q.recover_dequeue(&ctx);
                    assert_eq!(r, Some(7), "crash_at={crash_at}: exactly-once dequeue");
                    assert_eq!(q.values(), vec![8], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_dequeue_replays_response() {
        let (_p, q, ctx) = setup();
        q.enqueue(&ctx, 42);
        assert_eq!(q.dequeue(&ctx), Some(42));
        assert_eq!(
            q.recover_dequeue(&ctx),
            Some(42),
            "must replay, not re-dequeue"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn recovery_of_empty_dequeue_replays_none() {
        let (_p, q, ctx) = setup();
        assert_eq!(q.dequeue(&ctx), None);
        assert_eq!(q.recover_dequeue(&ctx), None);
    }
}
