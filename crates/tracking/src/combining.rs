//! Detectable flat-combining queue and stack: op-batching variants that
//! coalesce persistence instructions under contention.
//!
//! The plain Tracking structures pay a fixed per-operation persistence
//! bill — descriptor flush, `RD_q` flush, tag/update/result/cleanup
//! flushes, and 3–4 `psync`s — because every thread drives its own
//! operation through the generic help engine. Under multi-core contention
//! that bill is also paid on *contended* lines, the expensive category of
//! the paper's Section 5. Combining attacks both at once (the approach of
//! PBcomb and of memento's `queue_comb`): threads *announce* operations,
//! one thread at a time becomes the **combiner**, applies every pending
//! announcement to a private copy of the structure state, and publishes
//! the whole batch with one coalesced `pwb` set and a **single `psync`**.
//! Per operation that leaves one `psync` for the announcement plus
//! `1/batch` for the round, versus 3–4 for plain Tracking.
//!
//! ## Persistent objects
//!
//! * **Announcement** — stored in the spare words of the thread's own
//!   recovery line ([`pmem::ThreadCtx::aux_addr`]), so `RD_q` (reused as
//!   the announcement sequence number) and the operation's kind/argument
//!   live in **one cache line** and are crash-atomic: after a crash the
//!   line holds either the whole announcement or none of it.
//! * **Round record** — a fresh, never-recycled allocation per combining
//!   round: the new structure state plus a full per-thread
//!   `(applied_seq, result)` table copied forward from the previous
//!   round. The table is the recovery index: "was my announcement `s`
//!   applied?" is one bounded lookup, never a log scan.
//! * **Header** — one line holding the current-round pointer. Publishing
//!   a round is `store; pwb; psync` of this one word: the round's
//!   effects and every participant's result become durable *atomically*
//!   (the round's lines are `pwb`ed and fenced before the header `pwb`,
//!   so a durable header implies a durable round).
//! * **Request/ready words** — per-thread words in lines that are *never*
//!   `pwb`ed: logically volatile (PBcomb keeps them in DRAM). `request[t]`
//!   is how an announcer hands its (already durable) announcement to the
//!   combiner — set strictly **after** the announcement `psync`, which is
//!   what makes "effect durable ⇒ announcement durable" hold, the
//!   property detectability rests on. `ready[t]` is how the combiner
//!   releases waiters, set strictly after the round `psync` so no thread
//!   returns a result that could still be lost. Because they live in the
//!   pool, a crash does **not** reliably zero them — an unflushed line can
//!   still reach persistence through cache eviction, which the crash
//!   adversary models by sometimes keeping the volatile image — so
//!   recovery must start with [`CombiningStack::recover_structure`] /
//!   [`CombiningQueue::recover_structure`], which clears them (see
//!   *Exactly-once recovery*).
//!
//! ## Exactly-once recovery
//!
//! Recovery after a full-system crash is sequential: first one call to
//! `recover_structure`, which zeroes the volatile coordination words
//! (combiner lock, every `request[t]` and `ready[t]`) — the adversary may
//! have "evicted" any of them to persistence, and a surviving lock word
//! would wedge every waiter behind a combiner that no longer exists,
//! while a surviving `ready[t] ≥ s` could release a re-issued operation
//! before it is applied. Then each crashed thread runs the matching
//! `recover_*`:
//!
//! * `CP_q = 0` or `RD_q = 0`: the announcement line never became
//!   durable, so no combiner can have seen a request (requests are set
//!   only after the announcement `psync`... or the crash reset them) —
//!   wait: a request *observed before the crash* implies the announcement
//!   `psync` completed, hence `RD_q = s` would have survived. Either way
//!   the operation is invisible; re-execute from scratch.
//! * `RD_q = s` and the current round's `table[q].applied_seq ≥ s`: the
//!   operation was applied in a durable round; return the recorded
//!   result without re-executing.
//! * `RD_q = s` and `table[q].applied_seq < s`: the announcement is
//!   durable but unapplied (any round that applied it died unpublished —
//!   and with it every one of its effects, atomically). Re-issue
//!   `request[q] = s` and finish it, typically by self-combining.
//!
//! Sequence numbers come from `table[q].applied_seq + 1`, which is
//! durable and monotone, so a re-executed operation can never collide
//! with — or be mistaken for — an already-applied one.
//!
//! ## Structure representations
//!
//! Committed rounds are **immutable**: the combiner only allocates fresh
//! nodes and only mutates them before the publish fence, so a crash can
//! never expose a half-mutated committed state. The stack is a plain
//! immutable chain. The queue is a functional two-list queue (front
//! chain to pop from, back chain to push on, reversed into a fresh front
//! chain when the front runs dry — amortized O(1)); an MS-queue style
//! tail append would mutate a committed node's `next` field in place and
//! break round atomicity. Nothing is ever retired or reused: round
//! records, popped nodes and drained back-chains become garbage, the
//! price of single-`psync` round atomicity (same precedent as Tracking's
//! descriptors; bounded by ops executed, reclaimable offline).
//!
//! ## Concurrency & schedulability
//!
//! The combiner lock is a CAS on a never-flushed pool word, cleared by
//! `recover_structure` after a crash. Waiters spin on instrumented pool loads, so
//! the deterministic explorer's yield hooks fire inside every wait loop
//! and the variants are fully schedulable. With a single thread the
//! announcer always self-combines, which keeps single-thread crash
//! sweeps deterministic.

use std::sync::Arc;

use pmem::{PAddr, PmemPool, ThreadCtx, MAX_THREADS, WORDS_PER_LINE};

use crate::result::{dec_val, enc_val, FALSE, TRUE};
use crate::sites::{S_ANNOUNCE, S_COMB_PUBLISH, S_COMB_ROUND, S_CP};

/// Announced-operation kind: push (stack) / enqueue (queue).
pub const K_INSERT: u64 = 1;
/// Announced-operation kind: pop (stack) / dequeue (queue).
pub const K_REMOVE: u64 = 2;

// Header line: w0 current round, w1 request base, w2 ready base,
// w3 lock line, w4 nthreads, w5 shape.
const H_ROUND: u64 = 0;
const H_REQUEST: u64 = 1;
const H_READY: u64 = 2;
const H_LOCK: u64 = 3;
const H_NTHREADS: u64 = 4;
const H_SHAPE: u64 = 5;

// Round record: w0 seq, w1 state a (stack top / queue front), w2 state b
// (queue back), w3 previous round; per-thread table from w8 on,
// two words per thread: applied_seq, result.
const R_SEQ: u64 = 0;
const R_A: u64 = 1;
const R_B: u64 = 2;
const R_PREV: u64 = 3;
const R_TABLE: u64 = 8;

// Node line: w0 value, w1 next.
const N_VALUE: u64 = 0;
const N_NEXT: u64 = 1;

// Recovery-line spare words (crash-atomic with RD_q): kind, argument.
const AUX_KIND: usize = 0;
const AUX_ARG: usize = 1;

const SHAPE_STACK: u64 = 1;
const SHAPE_QUEUE: u64 = 2;

/// Largest insertable value (room for the result encoding).
pub const VALUE_MAX: u64 = u64::MAX - 4;

/// The combining core shared by [`CombiningStack`] and [`CombiningQueue`].
#[derive(Clone)]
struct Comb {
    pool: Arc<PmemPool>,
    hdr: PAddr,
    nthreads: usize,
}

impl Comb {
    fn new(pool: Arc<PmemPool>, root_idx: usize, nthreads: usize, shape: u64) -> Comb {
        assert!(
            (1..=MAX_THREADS).contains(&nthreads),
            "nthreads out of range"
        );
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        if existing != 0 {
            let hdr = PAddr::from_raw(existing);
            assert_eq!(
                pool.load(hdr.add(H_SHAPE)),
                shape,
                "root holds another shape"
            );
            let nthreads = pool.load(hdr.add(H_NTHREADS)) as usize;
            return Comb {
                pool,
                hdr,
                nthreads,
            };
        }
        let hdr = pool.alloc_lines(1);
        let request = pool.alloc_lines(nthreads);
        let ready = pool.alloc_lines(nthreads);
        let lock = pool.alloc_lines(1);
        let r0 = pool.alloc_lines(1 + table_lines(nthreads));
        // Fresh lines are durably zero: round 0 is ⟨seq 0, empty state,
        // all-zero table⟩ with no flushes needed.
        pool.store(hdr.add(H_ROUND), r0.raw());
        pool.store(hdr.add(H_REQUEST), request.raw());
        pool.store(hdr.add(H_READY), ready.raw());
        pool.store(hdr.add(H_LOCK), lock.raw());
        pool.store(hdr.add(H_NTHREADS), nthreads as u64);
        pool.store(hdr.add(H_SHAPE), shape);
        pool.pbarrier(hdr, WORDS_PER_LINE, S_COMB_PUBLISH);
        pool.store(root, hdr.raw());
        pool.pbarrier(root, 1, S_COMB_PUBLISH);
        Comb {
            pool,
            hdr,
            nthreads,
        }
    }

    #[inline]
    fn request_word(&self, t: usize) -> PAddr {
        PAddr::from_raw(self.pool.load(self.hdr.add(H_REQUEST))).add((t * WORDS_PER_LINE) as u64)
    }

    #[inline]
    fn ready_word(&self, t: usize) -> PAddr {
        PAddr::from_raw(self.pool.load(self.hdr.add(H_READY))).add((t * WORDS_PER_LINE) as u64)
    }

    #[inline]
    fn lock_word(&self) -> PAddr {
        PAddr::from_raw(self.pool.load(self.hdr.add(H_LOCK)))
    }

    #[inline]
    fn cur_round(&self) -> PAddr {
        PAddr::from_raw(self.pool.load(self.hdr.add(H_ROUND)))
    }

    #[inline]
    fn table_entry(&self, round: PAddr, t: usize) -> PAddr {
        round.add(R_TABLE + 2 * t as u64)
    }

    /// Announces `(kind, arg)` for `ctx`'s thread, waits (or combines)
    /// until it is durably applied, and returns the recorded result.
    fn run_op(&self, ctx: &ThreadCtx, kind: u64, arg: u64) -> u64 {
        let pool = &*self.pool;
        let q = ctx.tid();
        assert!(q < self.nthreads, "tid beyond the structure's nthreads");
        let s = pool.load(self.table_entry(self.cur_round(), q)) + 1;
        // One line (CP_q is already-durable 0 from begin_op; the crash
        // resolves the line all-or-nothing), one pwb, one psync. `CP_q` is
        // written strictly *last*: the crash adversary may "evict" the
        // line's volatile image at any store boundary, and every partial
        // announcement must keep `CP_q = 0` (operation invisible,
        // re-execute). Were `CP_q` set before `RD_q`, an eviction between
        // the two would persist `(CP=1, RD=previous op's seq)` and
        // recovery would replay the *previous* operation's result as this
        // one's.
        pool.store(ctx.aux_addr(AUX_KIND), kind);
        pool.store(ctx.aux_addr(AUX_ARG), arg);
        ctx.set_rd(s);
        ctx.set_cp(1);
        pool.pwb(ctx.rd_addr(), S_ANNOUNCE);
        pool.psync();
        // Only now may a combiner see the operation: a request implies
        // the announcement is durable.
        pool.store(self.request_word(q), s);
        self.await_applied(ctx, q, s)
    }

    /// Spins until the operation `(q, s)` is durably applied — helping as
    /// combiner whenever the lock is free — then returns its result.
    fn await_applied(&self, ctx: &ThreadCtx, q: usize, s: u64) -> u64 {
        let pool = &*self.pool;
        let lock = self.lock_word();
        loop {
            if pool.load(self.ready_word(q)) >= s {
                // `ready` is set only after the round psync; the current
                // round's table durably holds our entry.
                return pool.load(self.table_entry(self.cur_round(), q).add(1));
            }
            if pool.load(lock) == 0 && pool.cas(lock, 0, q as u64 + 1).is_ok() {
                self.combine(ctx);
                pool.store(lock, 0);
            } else {
                // Real OS threads on few cores: hand the timeslice to the
                // combiner rather than burning it on the spin. Under the
                // deterministic explorer the instrumented loads above are
                // the yield points, and this is a no-op.
                std::thread::yield_now();
            }
        }
    }

    /// The combiner: applies every pending announcement to a fresh round
    /// record and publishes it with one coalesced flush batch and a
    /// single `psync`. Caller must hold the combiner lock.
    fn combine(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        let cur = self.cur_round();
        // First pass, no allocation: is anything actually pending?
        let mut pending: Vec<(usize, u64)> = Vec::new();
        for t in 0..self.nthreads {
            let req = pool.load(self.request_word(t));
            if req > pool.load(self.table_entry(cur, t)) {
                pending.push((t, req));
            }
        }
        if pending.is_empty() {
            return;
        }
        let shape = pool.load(self.hdr.add(H_SHAPE));
        let nr = pool.alloc_lines(1 + table_lines(self.nthreads));
        // Carry the table forward, then the header words.
        for t in 0..self.nthreads {
            let from = self.table_entry(cur, t);
            let to = self.table_entry(nr, t);
            pool.store(to, pool.load(from));
            pool.store(to.add(1), pool.load(from.add(1)));
        }
        pool.store(nr.add(R_SEQ), pool.load(cur.add(R_SEQ)) + 1);
        pool.store(nr.add(R_PREV), cur.raw());
        let mut a = pool.load(cur.add(R_A));
        let mut b = pool.load(cur.add(R_B));
        let mut fresh: Vec<PAddr> = Vec::new();
        for &(t, req) in &pending {
            let line = pool.recovery_line(t);
            let kind = pool.load(line.add(2 + AUX_KIND as u64));
            let arg = pool.load(line.add(2 + AUX_ARG as u64));
            let res = match shape {
                SHAPE_STACK => self.apply_stack(&mut a, kind, arg, &mut fresh, ctx),
                _ => self.apply_queue(&mut a, &mut b, kind, arg, &mut fresh, ctx),
            };
            let e = self.table_entry(nr, t);
            pool.store(e, req);
            pool.store(e.add(1), res);
        }
        pool.store(nr.add(R_A), a);
        pool.store(nr.add(R_B), b);
        // The coalesced persistence batch: every fresh node line and the
        // round record, one fence, then the single publish point.
        for node in &fresh {
            pool.pwb(*node, S_COMB_ROUND);
        }
        pool.pwb_range(
            nr,
            (1 + table_lines(self.nthreads)) * WORDS_PER_LINE,
            S_COMB_ROUND,
        );
        pool.pfence();
        pool.store(self.hdr.add(H_ROUND), nr.raw());
        pool.pwb(self.hdr, S_COMB_PUBLISH);
        pool.psync();
        // Durable: release the waiters.
        for &(t, req) in &pending {
            pool.store(self.ready_word(t), req);
        }
    }

    fn alloc_node(&self, ctx: &ThreadCtx, value: u64, next: u64, fresh: &mut Vec<PAddr>) -> PAddr {
        let pool = &*self.pool;
        let node = ctx.palloc(1);
        pool.store(node.add(N_VALUE), value);
        pool.store(node.add(N_NEXT), next);
        fresh.push(node);
        node
    }

    fn apply_stack(
        &self,
        top: &mut u64,
        kind: u64,
        arg: u64,
        fresh: &mut Vec<PAddr>,
        ctx: &ThreadCtx,
    ) -> u64 {
        let pool = &*self.pool;
        if kind == K_INSERT {
            *top = self.alloc_node(ctx, arg, *top, fresh).raw();
            TRUE
        } else if *top == 0 {
            FALSE
        } else {
            let node = PAddr::from_raw(*top);
            *top = pool.load(node.add(N_NEXT));
            enc_val(pool.load(node.add(N_VALUE)))
        }
    }

    fn apply_queue(
        &self,
        front: &mut u64,
        back: &mut u64,
        kind: u64,
        arg: u64,
        fresh: &mut Vec<PAddr>,
        ctx: &ThreadCtx,
    ) -> u64 {
        let pool = &*self.pool;
        if kind == K_INSERT {
            *back = self.alloc_node(ctx, arg, *back, fresh).raw();
            return TRUE;
        }
        if *front == 0 && *back != 0 {
            // Reverse the back chain into a *fresh* front chain (committed
            // nodes stay immutable — see module docs).
            let mut vals = Vec::new();
            let mut nd = PAddr::from_raw(*back);
            while !nd.is_null() {
                vals.push(pool.load(nd.add(N_VALUE)));
                nd = PAddr::from_raw(pool.load(nd.add(N_NEXT)));
            }
            let mut head = 0u64;
            for v in vals {
                // newest-first walk, so the last node built is the oldest:
                // it ends up at the head of the front chain.
                head = self.alloc_node(ctx, v, head, fresh).raw();
            }
            *front = head;
            *back = 0;
        }
        if *front == 0 {
            FALSE
        } else {
            let node = PAddr::from_raw(*front);
            *front = pool.load(node.add(N_NEXT));
            enc_val(pool.load(node.add(N_VALUE)))
        }
    }

    /// Zeroes the volatile coordination words after a full-system crash:
    /// the combiner lock and every thread's request/ready word. These
    /// lines are never `pwb`ed, but the crash adversary may keep their
    /// volatile images (modeling cache eviction), and any survivor is
    /// poison: a held lock wedges every waiter behind a dead combiner,
    /// a stale request re-submits a finished announcement (harmless but
    /// wasteful), and a stale `ready[t]` can release a re-issued
    /// operation before it is applied. Must run once, before any
    /// `recover_*` call and with no operations in flight.
    fn post_crash_reset(&self) {
        let pool = &*self.pool;
        pool.store(self.lock_word(), 0);
        for t in 0..self.nthreads {
            pool.store(self.request_word(t), 0);
            pool.store(self.ready_word(t), 0);
        }
    }

    /// The recovery path shared by all four `recover_*` wrappers; returns
    /// `None` when the caller must re-execute from scratch.
    fn recover(&self, ctx: &ThreadCtx) -> Option<u64> {
        let pool = &*self.pool;
        let q = ctx.tid();
        let s = ctx.rd();
        if ctx.cp() == 0 || s == 0 {
            return None; // never visibly started
        }
        let e = self.table_entry(self.cur_round(), q);
        if pool.load(e) >= s {
            return Some(pool.load(e.add(1))); // applied: replay the result
        }
        // Durable announcement, not applied: re-request and finish it.
        pool.store(self.request_word(q), s);
        Some(self.await_applied(ctx, q, s))
    }

    fn state(&self) -> (u64, u64) {
        let cur = self.cur_round();
        (self.pool.load(cur.add(R_A)), self.pool.load(cur.add(R_B)))
    }

    fn chain(&self, mut head: u64) -> Vec<u64> {
        let pool = &*self.pool;
        let mut out = Vec::new();
        while head != 0 {
            let nd = PAddr::from_raw(head);
            out.push(pool.load(nd.add(N_VALUE)));
            head = pool.load(nd.add(N_NEXT));
        }
        out
    }
}

fn table_lines(nthreads: usize) -> usize {
    (2 * nthreads).div_ceil(WORDS_PER_LINE)
}

/// Flat-combining detectable LIFO stack (see module docs).
#[derive(Clone)]
pub struct CombiningStack {
    inner: Comb,
}

impl CombiningStack {
    /// Creates a stack for up to `nthreads` announcing threads rooted in
    /// root cell `root_idx`, or re-attaches to an existing one.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, nthreads: usize) -> Self {
        CombiningStack {
            inner: Comb::new(pool, root_idx, nthreads, SHAPE_STACK),
        }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.inner.pool
    }

    /// Pushes `value`.
    pub fn push(&self, ctx: &ThreadCtx, value: u64) {
        ctx.begin_op(S_CP);
        self.push_started(ctx, value)
    }

    /// [`Self::push`] without the system's `CP_q := 0` pre-step.
    pub fn push_started(&self, ctx: &ThreadCtx, value: u64) {
        assert!(value <= VALUE_MAX, "value too large to encode");
        self.inner.run_op(ctx, K_INSERT, value);
    }

    /// Post-crash structure recovery: clears the combiner lock and the
    /// request/ready words (see module docs, *Exactly-once recovery*).
    /// Call once after a full-system crash, before any `recover_*` or new
    /// operation; requires quiescence.
    pub fn recover_structure(&self) {
        self.inner.post_crash_reset()
    }

    /// `Push.Recover`.
    pub fn recover_push(&self, ctx: &ThreadCtx, value: u64) {
        if self.inner.recover(ctx).is_none() {
            self.push(ctx, value)
        }
    }

    /// Pops the most recent value, or `None` when empty.
    pub fn pop(&self, ctx: &ThreadCtx) -> Option<u64> {
        ctx.begin_op(S_CP);
        self.pop_started(ctx)
    }

    /// [`Self::pop`] without the system's `CP_q := 0` pre-step.
    pub fn pop_started(&self, ctx: &ThreadCtx) -> Option<u64> {
        decode_opt(self.inner.run_op(ctx, K_REMOVE, 0))
    }

    /// `Pop.Recover`.
    pub fn recover_pop(&self, ctx: &ThreadCtx) -> Option<u64> {
        match self.inner.recover(ctx) {
            Some(r) => decode_opt(r),
            None => self.pop(ctx),
        }
    }

    /// Values from top to bottom (quiescent only).
    pub fn values(&self) -> Vec<u64> {
        self.inner.chain(self.inner.state().0)
    }

    /// Number of stacked values (quiescent only).
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Is the stack empty (quiescent only)?
    pub fn is_empty(&self) -> bool {
        self.inner.state().0 == 0
    }
}

/// Flat-combining detectable FIFO queue (see module docs).
#[derive(Clone)]
pub struct CombiningQueue {
    inner: Comb,
}

impl CombiningQueue {
    /// Creates a queue for up to `nthreads` announcing threads rooted in
    /// root cell `root_idx`, or re-attaches to an existing one.
    pub fn new(pool: Arc<PmemPool>, root_idx: usize, nthreads: usize) -> Self {
        CombiningQueue {
            inner: Comb::new(pool, root_idx, nthreads, SHAPE_QUEUE),
        }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.inner.pool
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, ctx: &ThreadCtx, value: u64) {
        ctx.begin_op(S_CP);
        self.enqueue_started(ctx, value)
    }

    /// [`Self::enqueue`] without the system's `CP_q := 0` pre-step.
    pub fn enqueue_started(&self, ctx: &ThreadCtx, value: u64) {
        assert!(value <= VALUE_MAX, "value too large to encode");
        self.inner.run_op(ctx, K_INSERT, value);
    }

    /// Post-crash structure recovery: clears the combiner lock and the
    /// request/ready words (see module docs, *Exactly-once recovery*).
    /// Call once after a full-system crash, before any `recover_*` or new
    /// operation; requires quiescence.
    pub fn recover_structure(&self) {
        self.inner.post_crash_reset()
    }

    /// `Enqueue.Recover`.
    pub fn recover_enqueue(&self, ctx: &ThreadCtx, value: u64) {
        if self.inner.recover(ctx).is_none() {
            self.enqueue(ctx, value)
        }
    }

    /// Removes the oldest value, or `None` when empty.
    pub fn dequeue(&self, ctx: &ThreadCtx) -> Option<u64> {
        ctx.begin_op(S_CP);
        self.dequeue_started(ctx)
    }

    /// [`Self::dequeue`] without the system's `CP_q := 0` pre-step.
    pub fn dequeue_started(&self, ctx: &ThreadCtx) -> Option<u64> {
        decode_opt(self.inner.run_op(ctx, K_REMOVE, 0))
    }

    /// `Dequeue.Recover`.
    pub fn recover_dequeue(&self, ctx: &ThreadCtx) -> Option<u64> {
        match self.inner.recover(ctx) {
            Some(r) => decode_opt(r),
            None => self.dequeue(ctx),
        }
    }

    /// Values in FIFO order, oldest first (quiescent only).
    pub fn values(&self) -> Vec<u64> {
        let (front, back) = self.inner.state();
        let mut out = self.inner.chain(front);
        let mut rear = self.inner.chain(back);
        rear.reverse();
        out.extend(rear);
        out
    }

    /// Number of queued values (quiescent only).
    pub fn len(&self) -> usize {
        self.values().len()
    }

    /// Is the queue empty (quiescent only)?
    pub fn is_empty(&self) -> bool {
        let (front, back) = self.inner.state();
        front == 0 && back == 0
    }
}

fn decode_opt(r: u64) -> Option<u64> {
    if r == FALSE {
        None
    } else {
        Some(dec_val(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};

    fn setup_stack() -> (Arc<PmemPool>, CombiningStack, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
        let s = CombiningStack::new(pool.clone(), 8, 4);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, s, ctx)
    }

    fn setup_queue() -> (Arc<PmemPool>, CombiningQueue, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
        let q = CombiningQueue::new(pool.clone(), 9, 4);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, q, ctx)
    }

    #[test]
    fn stack_lifo_order() {
        let (_p, s, ctx) = setup_stack();
        assert!(s.is_empty());
        assert_eq!(s.pop(&ctx), None);
        for v in [1u64, 2, 3] {
            s.push(&ctx, v);
        }
        assert_eq!(s.values(), vec![3, 2, 1]);
        assert_eq!(s.pop(&ctx), Some(3));
        assert_eq!(s.pop(&ctx), Some(2));
        assert_eq!(s.pop(&ctx), Some(1));
        assert_eq!(s.pop(&ctx), None);
    }

    #[test]
    fn queue_fifo_order_across_reversals() {
        let (_p, q, ctx) = setup_queue();
        assert_eq!(q.dequeue(&ctx), None);
        for v in 1..=5u64 {
            q.enqueue(&ctx, v);
        }
        assert_eq!(q.values(), vec![1, 2, 3, 4, 5]);
        assert_eq!(q.dequeue(&ctx), Some(1));
        q.enqueue(&ctx, 6);
        for want in 2..=6u64 {
            assert_eq!(q.dequeue(&ctx), Some(want));
        }
        assert_eq!(q.dequeue(&ctx), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_stack_loses_nothing() {
        let (p, s, _ctx) = setup_stack();
        let mut handles = vec![];
        for t in 0..2u64 {
            let s = s.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    s.push(&ctx, t * 1000 + i);
                }
                Vec::new()
            }));
        }
        for t in 2..4u64 {
            let s = s.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 200 {
                    if let Some(v) = s.pop(&ctx) {
                        got.push(v);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u64> = (0..200).chain(1000..1200).collect();
        want.sort_unstable();
        assert_eq!(all, want);
        assert!(s.is_empty());
    }

    #[test]
    fn crash_swept_push_recovers_exactly_once() {
        for crash_at in 0..1000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let s = CombiningStack::new(pool.clone(), 8, 2);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            s.push(&ctx, 1);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| s.push_started(&ctx, 2));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(()) => {
                    assert_eq!(s.values(), vec![2, 1]);
                    return;
                }
                None => {
                    s.recover_structure();
                    s.recover_push(&ctx, 2);
                    assert_eq!(s.values(), vec![2, 1], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_pop_recovers_exactly_once() {
        for crash_at in 0..1000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let s = CombiningStack::new(pool.clone(), 8, 2);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            s.push(&ctx, 7);
            s.push(&ctx, 8);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| s.pop_started(&ctx));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert_eq!(r, Some(8));
                    assert_eq!(s.values(), vec![7]);
                    return;
                }
                None => {
                    s.recover_structure();
                    assert_eq!(s.recover_pop(&ctx), Some(8), "crash_at={crash_at}");
                    assert_eq!(s.values(), vec![7], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_enqueue_recovers_exactly_once() {
        for crash_at in 0..1000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let q = CombiningQueue::new(pool.clone(), 9, 2);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            q.enqueue(&ctx, 1);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| q.enqueue_started(&ctx, 2));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(()) => {
                    assert_eq!(q.values(), vec![1, 2]);
                    return;
                }
                None => {
                    q.recover_structure();
                    q.recover_enqueue(&ctx, 2);
                    assert_eq!(q.values(), vec![1, 2], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_dequeue_recovers_exactly_once() {
        for crash_at in 0..1000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let q = CombiningQueue::new(pool.clone(), 9, 2);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            q.enqueue(&ctx, 7);
            q.enqueue(&ctx, 8);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| q.dequeue_started(&ctx));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert_eq!(r, Some(7));
                    assert_eq!(q.values(), vec![8]);
                    return;
                }
                None => {
                    q.recover_structure();
                    assert_eq!(q.recover_dequeue(&ctx), Some(7), "crash_at={crash_at}");
                    assert_eq!(q.values(), vec![8], "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn crash_swept_pop_recovers_under_seeded_adversary() {
        // The seeded adversary may keep the *volatile* image of the
        // never-flushed coordination lines — modeling cache eviction of a
        // held combiner lock (or a stale ready word) into persistence.
        // Without the `recover_structure` reset, recovery then spins
        // forever behind a combiner that no longer exists; this sweep is
        // the regression test for that wedge.
        for crash_at in 0..1000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(32 << 20)));
            let s = CombiningStack::new(pool.clone(), 8, 2);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            s.push(&ctx, 1);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| s.pop_started(&ctx));
            pool.crash(&mut pmem::SeededAdversary::new(
                crash_at.wrapping_mul(0x9E37_79B9) | 1,
            ));
            match pre {
                Some(r) => {
                    assert_eq!(r, Some(1));
                    return;
                }
                None => {
                    s.recover_structure();
                    assert_eq!(s.recover_pop(&ctx), Some(1), "crash_at={crash_at}");
                    assert!(s.is_empty(), "crash_at={crash_at}");
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_replays_completed_responses() {
        let (_p, s, ctx) = setup_stack();
        s.push(&ctx, 42);
        assert_eq!(s.pop(&ctx), Some(42));
        assert_eq!(s.recover_pop(&ctx), Some(42), "replay, not re-pop");
        assert!(s.is_empty());
    }

    #[test]
    fn reattach_preserves_contents() {
        let (p, s, ctx) = setup_stack();
        s.push(&ctx, 5);
        s.push(&ctx, 6);
        let s2 = CombiningStack::new(p.clone(), 8, 4);
        assert_eq!(s2.values(), vec![6, 5]);
    }
}
