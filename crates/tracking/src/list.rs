//! The detectably recoverable sorted linked list — Section 4 of the paper
//! (Algorithms 3 and 4, types and initialization of Figure 2).
//!
//! The list is sorted by strictly increasing key with two sentinels, `head`
//! (key [`KEY_MIN`]) and `tail` (key [`KEY_MAX`]); user keys lie strictly
//! between. A node is one cache line: `⟨key, next, info⟩`.
//!
//! Characteristic details faithfully carried over from the pseudocode:
//!
//! * **Insert replaces its successor with a copy** (`newcurr`, Algorithm 3
//!   lines 1/19): `pred→next` is CASed from `curr` to a fresh `newnd` whose
//!   `next` is a fresh copy of `curr`. On the default bump pool every value
//!   stored into a `next` field is a never-before-seen node address, so no
//!   `next` field ever holds the same value twice — the paper's assumption
//!   (a), which makes the WriteSet CAS of a *delete*
//!   (`pred→next: curr → curr→next`) ABA-free as well. On a
//!   `pmem::PoolCfg::reclaim` pool node addresses *can* repeat, but only
//!   across an epoch quiescence (removed nodes are retired to
//!   `pmem::palloc` limbo and re-issued only after a drain, which the
//!   harness runs strictly between operations): every `next` expectation is
//!   gathered and CASed within one operation window, and no window spans a
//!   quiescence point, so the CAS still cannot observe a recycled address.
//!   Descriptors are never recycled (see [`Desc::alloc`]), keeping info
//!   version stamps unique forever.
//! * **A deleted (or replaced) node keeps its descriptor tag forever**
//!   (Figure 1c): its AffectSet entry has `untag_on_cleanup = false`, so any
//!   thread that still reaches it helps the finished operation and retries,
//!   never mutating a node that left the list.
//! * **Read-only outcomes skip `help`** (the red lines of the pseudocode):
//!   an insert of a present key, a delete of an absent key and every `find`
//!   record their response directly in a descriptor, persist it together
//!   with `RD_q`, and return — tagging nothing. Such operations linearize
//!   at the point the single AffectSet node's `info` field was read.

use std::sync::Arc;

use pmem::{is_tagged, PAddr, PmemPool, ThreadCtx};

use crate::descriptor::{AffectEntry, Desc, WriteEntry};
use crate::help::help;
use crate::result::{dec_bool, enc_bool, BOTTOM};
use crate::sites::{S_CP, S_DESC, S_NEW, S_RD, S_TRAVERSE};

/// Sentinel key of `head` (smaller than every user key).
pub const KEY_MIN: u64 = 0;
/// Sentinel key of `tail` (larger than every user key).
pub const KEY_MAX: u64 = u64::MAX;

/// Descriptor op-type tag for list inserts.
pub const OP_INSERT: u8 = 1;
/// Descriptor op-type tag for list deletes.
pub const OP_DELETE: u8 = 2;
/// Descriptor op-type tag for list finds.
pub const OP_FIND: u8 = 3;

// Node layout (one cache line): w0 = key, w1 = next, w2 = info.
const N_KEY: u64 = 0;
const N_NEXT: u64 = 1;
const N_INFO: u64 = 2;

/// Ablation knobs for the paper's design choices (both default to the
/// paper's configuration). The benchmark harness measures what each choice
/// buys (see DESIGN.md's ablation index).
#[derive(Copy, Clone, Debug)]
pub struct ListConfig {
    /// Flush-and-fence after every shared read of the gather phase — the
    /// naive Izraelevitz-style placement the paper's scheme avoids.
    /// Default `false`.
    pub traversal_flush: bool,
    /// Apply the paper's read-only optimization (find / duplicate insert /
    /// absent delete skip `help` entirely). Default `true`; when disabled,
    /// those outcomes run the full tag–update–cleanup pipeline.
    pub read_only_opt: bool,
}

impl Default for ListConfig {
    fn default() -> Self {
        ListConfig {
            traversal_flush: false,
            read_only_opt: true,
        }
    }
}

/// The detectably recoverable sorted linked list.
///
/// Cloneable handle; all state lives in the pool. Every method takes the
/// calling thread's [`ThreadCtx`] (which carries the persistent `CP_q` and
/// `RD_q` recovery variables).
#[derive(Clone)]
pub struct RecoverableList {
    pool: Arc<PmemPool>,
    head: PAddr,
    cfg: ListConfig,
}

/// Result of the gather-phase `Search` (Algorithm 3 lines 35–44).
struct SearchRes {
    pred: PAddr,
    curr: PAddr,
    pred_info: u64,
    curr_info: u64,
}

impl RecoverableList {
    /// Creates a new empty list whose head pointer is stored in root cell
    /// `root_idx`, or re-attaches to the list already rooted there (e.g.
    /// after a simulated crash).
    pub fn new(pool: Arc<PmemPool>, root_idx: usize) -> Self {
        Self::with_config(pool, root_idx, ListConfig::default())
    }

    /// [`Self::new`] with explicit ablation knobs.
    pub fn with_config(pool: Arc<PmemPool>, root_idx: usize, cfg: ListConfig) -> Self {
        pool.register_site_names(&crate::sites::SITES);
        let root = pool.root(root_idx);
        let existing = pool.load(root);
        if existing != 0 {
            return RecoverableList {
                pool,
                head: PAddr::from_raw(existing),
                cfg,
            };
        }
        let head = pool.alloc_lines(1);
        let tail = pool.alloc_lines(1);
        pool.store(head.add(N_KEY), KEY_MIN);
        pool.store(head.add(N_NEXT), tail.raw());
        pool.store(head.add(N_INFO), 0);
        pool.store(tail.add(N_KEY), KEY_MAX);
        pool.store(tail.add(N_NEXT), 0);
        pool.store(tail.add(N_INFO), 0);
        pool.pwb(head, S_NEW);
        pool.pwb(tail, S_NEW);
        pool.pfence();
        pool.store(root, head.raw());
        pool.pbarrier(root, 1, S_NEW);
        RecoverableList { pool, head, cfg }
    }

    /// The owning pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn assert_user_key(key: u64) {
        assert!(
            key > KEY_MIN && key < KEY_MAX,
            "user keys must lie strictly between the sentinels"
        );
    }

    /// `Search(key)` — returns the last two nodes of the traversal and the
    /// `info` values gathered on first access (Algorithm 3 lines 35–44).
    /// `curr` is the first node with `key' >= key`; `pred` its predecessor.
    fn search(&self, key: u64) -> SearchRes {
        let pool = &*self.pool;
        // Fence-coalescing region for the `traversal_flush` ablation: on a
        // `pmem::PoolCfg::flushopt` pool the per-node `pwb; pfence` pairs
        // elide once the traversed lines are clean. Pure permission — a
        // fence with pending flush work still executes (see `pmem::flushopt`).
        let _region = pool.flushopt_enabled().then(|| pool.coalesce_fences());
        let mut pred = PAddr::NULL;
        let mut pred_info = 0;
        let mut curr = self.head;
        let mut curr_info = pool.load(curr.add(N_INFO));
        while pool.load(curr.add(N_KEY)) < key {
            if self.cfg.traversal_flush {
                // ablation: naive durability-transformation placement
                pool.pwb(curr, S_TRAVERSE);
                pool.pfence();
            }
            pred = curr;
            pred_info = curr_info;
            curr = PAddr::from_raw(pool.load(curr.add(N_NEXT)));
            curr_info = pool.load(curr.add(N_INFO));
        }
        if self.cfg.traversal_flush {
            pool.pwb(curr, S_TRAVERSE);
            pool.pfence();
        }
        SearchRes {
            pred,
            curr,
            pred_info,
            curr_info,
        }
    }

    /// The recoverable-operation prologue shared by insert and delete
    /// (Algorithm 3 lines 4–7 / Algorithm 4 lines 46–49): persist
    /// `RD_q := ⊥` strictly before `CP_q := 1`, so a post-crash
    /// `CP_q = 1` certifies that `RD_q` belongs to *this* operation.
    fn prologue(&self, ctx: &ThreadCtx) {
        let pool = &*self.pool;
        ctx.set_rd(0);
        pool.pbarrier(ctx.rd_addr(), 1, S_RD);
        ctx.set_cp(1);
        pool.pwb(ctx.cp_addr(), S_CP);
        pool.psync();
    }

    // ------------------------------------------------------------------
    // Insert (Algorithm 3)
    // ------------------------------------------------------------------

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(S_CP);
        self.insert_started(ctx, key)
    }

    /// [`Self::insert`] without the system's `CP_q := 0` pre-step (for
    /// harnesses that call [`ThreadCtx::begin_op`] themselves).
    pub fn insert_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        Self::assert_user_key(key);
        let pool = &*self.pool;
        // Lines 1–2: the new nodes are allocated once and reused across
        // attempts (they are only published by a successful tagging phase).
        let newcurr = ctx.palloc(1);
        let newnd = ctx.palloc(1);
        self.prologue(ctx);
        loop {
            // Gather phase (lines 9–13)
            let s = self.search(key);
            // Helping phase (lines 14–18)
            if is_tagged(s.pred_info) {
                help(pool, Desc::from_raw(s.pred_info));
                continue;
            }
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            let desc = Desc::alloc(pool);
            // Line 19: newcurr becomes a copy of curr (tagged with opInfo);
            // the gathered curr_info validates these reads at tagging time.
            pool.store(newcurr.add(N_KEY), pool.load(s.curr.add(N_KEY)));
            pool.store(newcurr.add(N_NEXT), pool.load(s.curr.add(N_NEXT)));
            pool.store(newcurr.add(N_INFO), desc.tagged());
            // Line 20 + newnd body
            pool.store(newnd.add(N_KEY), key);
            pool.store(newnd.add(N_NEXT), newcurr.raw());
            pool.store(newnd.add(N_INFO), desc.tagged());
            let dup = pool.load(s.curr.add(N_KEY)) == key;
            if dup {
                // Lines 11–12, 21–23: read-only outcome; AffectSet = {curr}
                desc.init(
                    pool,
                    OP_INSERT,
                    enc_bool(false),
                    &[AffectEntry {
                        info_addr: s.curr.add(N_INFO),
                        observed: s.curr_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                if self.cfg.read_only_opt {
                    desc.set_result(pool, enc_bool(false));
                }
            } else {
                // Lines 13, 25–27
                desc.init(
                    pool,
                    OP_INSERT,
                    enc_bool(true),
                    &[
                        AffectEntry {
                            info_addr: s.pred.add(N_INFO),
                            observed: s.pred_info,
                            untag_on_cleanup: true,
                        },
                        AffectEntry {
                            info_addr: s.curr.add(N_INFO),
                            observed: s.curr_info,
                            // curr is replaced by its copy: tagged forever
                            untag_on_cleanup: false,
                        },
                    ],
                    &[WriteEntry {
                        field: s.pred.add(N_NEXT),
                        old: s.curr.raw(),
                        new: newnd.raw(),
                    }],
                    &[newcurr.add(N_INFO), newnd.add(N_INFO)],
                );
            }
            // Line 28: pbarrier(newcurr, newnd, *opInfo)
            pool.pwb(newcurr, S_NEW);
            pool.pwb(newnd, S_NEW);
            pool.pwb_range(desc.addr(), crate::descriptor::D_WORDS, S_DESC);
            pool.pfence();
            // Lines 29–30
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            // Line 31: read-only outcome returns without Help (unless the
            // read-only optimization is ablated away)
            if dup && self.cfg.read_only_opt {
                // The pre-built nodes were never published: retire them
                // (no-op on a bump pool).
                ctx.retire(newcurr, 1);
                ctx.retire(newnd, 1);
                return false;
            }
            // Lines 32–33
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                let ok = dec_bool(r);
                if ok {
                    // The WriteSet CAS replaced curr with its copy and its
                    // durability was fenced by help's cleanup: curr left
                    // the structure for good (it keeps its tag, so late
                    // readers still help through its intact info word).
                    ctx.retire(s.curr, 1);
                } else {
                    ctx.retire(newcurr, 1);
                    ctx.retire(newnd, 1);
                }
                return ok;
            }
            // Line 34: a new attempt uses a fresh descriptor (allocated at
            // the top of the loop).
        }
    }

    /// `Insert.Recover` (Algorithm 1 lines 27–31).
    pub fn recover_insert(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.insert(ctx, key),
        }
    }

    // ------------------------------------------------------------------
    // Delete (Algorithm 4)
    // ------------------------------------------------------------------

    /// Deletes `key`; returns `false` if it was absent.
    pub fn delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        ctx.begin_op(S_CP);
        self.delete_started(ctx, key)
    }

    /// [`Self::delete`] without the system's `CP_q := 0` pre-step.
    pub fn delete_started(&self, ctx: &ThreadCtx, key: u64) -> bool {
        Self::assert_user_key(key);
        let pool = &*self.pool;
        self.prologue(ctx);
        loop {
            // Gather phase (lines 51–55)
            let s = self.search(key);
            // Helping phase (lines 56–62)
            if is_tagged(s.pred_info) {
                help(pool, Desc::from_raw(s.pred_info));
                continue;
            }
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            let desc = Desc::alloc(pool);
            let absent = pool.load(s.curr.add(N_KEY)) != key;
            if absent {
                // Lines 53–54, 63–65
                desc.init(
                    pool,
                    OP_DELETE,
                    enc_bool(false),
                    &[AffectEntry {
                        info_addr: s.curr.add(N_INFO),
                        observed: s.curr_info,
                        untag_on_cleanup: true,
                    }],
                    &[],
                    &[],
                );
                if self.cfg.read_only_opt {
                    desc.set_result(pool, enc_bool(false));
                }
            } else {
                // Lines 55, 66–68: unlink curr (its gathered successor
                // becomes pred's next; the value is ABA-free because next
                // fields never repeat — see module docs).
                let succ = pool.load(s.curr.add(N_NEXT));
                desc.init(
                    pool,
                    OP_DELETE,
                    enc_bool(true),
                    &[
                        AffectEntry {
                            info_addr: s.pred.add(N_INFO),
                            observed: s.pred_info,
                            untag_on_cleanup: true,
                        },
                        AffectEntry {
                            info_addr: s.curr.add(N_INFO),
                            observed: s.curr_info,
                            untag_on_cleanup: false, // deleted: tagged forever
                        },
                    ],
                    &[WriteEntry {
                        field: s.pred.add(N_NEXT),
                        old: s.curr.raw(),
                        new: succ,
                    }],
                    &[],
                );
            }
            // Lines 69–71
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            // Line 72
            if absent && self.cfg.read_only_opt {
                return false;
            }
            // Lines 73–74
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                let ok = dec_bool(r);
                if ok {
                    // curr was durably unlinked (help fenced the WriteSet
                    // CAS before recording the result): retire it.
                    ctx.retire(s.curr, 1);
                }
                return ok;
            }
        }
    }

    /// `Delete.Recover` (Algorithm 1 lines 27–31).
    pub fn recover_delete(&self, ctx: &ThreadCtx, key: u64) -> bool {
        match self.recover_update(ctx) {
            Some(r) => r,
            None => self.delete(ctx, key),
        }
    }

    /// Common recovery body: returns `Some(result)` if the interrupted
    /// operation demonstrably took effect, `None` if it must be re-invoked.
    fn recover_update(&self, ctx: &ThreadCtx) -> Option<bool> {
        let pool = &*self.pool;
        let rd = ctx.rd();
        // Line 28: CP=0 means RD was not yet re-initialized for this op;
        // RD=Null means no attempt was published. Either way: re-invoke.
        if ctx.cp() == 0 || rd == 0 {
            return None;
        }
        let desc = Desc::from_raw(rd);
        // Line 29: finish (or confirm the failure of) the last attempt.
        // help is idempotent, so this is safe even if the attempt completed.
        help(pool, desc);
        let r = desc.result(pool);
        if r != BOTTOM {
            Some(dec_bool(r))
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Find (Algorithm 4 lines 76–90)
    // ------------------------------------------------------------------

    /// Is `key` present? Read-only; never tags a node (the paper's
    /// optimization for read-only operations — unless ablated via
    /// [`ListConfig::read_only_opt`], in which case the full tag–result–
    /// cleanup pipeline runs).
    pub fn find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        Self::assert_user_key(key);
        if !self.cfg.read_only_opt {
            return self.find_unoptimized(ctx, key);
        }
        let pool = &*self.pool;
        // Line 76: one descriptor for the whole operation.
        let desc = Desc::alloc(pool);
        loop {
            // Gather phase (lines 78–80)
            let s = self.search(key);
            // Helping phase (lines 81–84)
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            // Lines 85–90: the response depends only on the immutable key
            // of curr; linearizes at the read of curr's info field above.
            let result = pool.load(s.curr.add(N_KEY)) == key;
            desc.init(
                pool,
                OP_FIND,
                enc_bool(result),
                &[AffectEntry {
                    info_addr: s.curr.add(N_INFO),
                    observed: s.curr_info,
                    untag_on_cleanup: true,
                }],
                &[],
                &[],
            );
            desc.set_result(pool, enc_bool(result));
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            return result;
        }
    }

    /// `Find.Recover`: a find is read-only, so recovery simply re-executes
    /// it — the re-execution linearizes after the crash, which is always
    /// admissible for an operation that had not returned.
    pub fn recover_find(&self, ctx: &ThreadCtx, key: u64) -> bool {
        self.find(ctx, key)
    }

    /// Find without the read-only optimization (ablation): the response is
    /// produced by the full `help` pipeline — tag `curr`, write the
    /// result, clean up — exactly what the paper's red code lines avoid.
    fn find_unoptimized(&self, ctx: &ThreadCtx, key: u64) -> bool {
        let pool = &*self.pool;
        self.prologue(ctx);
        loop {
            let s = self.search(key);
            if is_tagged(s.curr_info) {
                help(pool, Desc::from_raw(s.curr_info));
                continue;
            }
            let found = pool.load(s.curr.add(N_KEY)) == key;
            // fresh descriptor per attempt: a backtracked descriptor must
            // never be re-initialized (helpers may still hold references)
            let desc = Desc::alloc(pool);
            desc.init(
                pool,
                OP_FIND,
                enc_bool(found),
                &[AffectEntry {
                    info_addr: s.curr.add(N_INFO),
                    observed: s.curr_info,
                    untag_on_cleanup: true,
                }],
                &[],
                &[],
            );
            desc.pbarrier(pool, S_DESC);
            ctx.set_rd(desc.raw());
            pool.pwb(ctx.rd_addr(), S_RD);
            pool.psync();
            help(pool, desc);
            let r = desc.result(pool);
            if r != BOTTOM {
                return dec_bool(r);
            }
        }
    }

    // ------------------------------------------------------------------
    // Quiescent inspection helpers (tests, examples, validation)
    // ------------------------------------------------------------------

    /// Collects the user keys in list order. Only meaningful while no
    /// operation is in flight.
    pub fn keys(&self) -> Vec<u64> {
        let pool = &*self.pool;
        let mut out = Vec::new();
        let mut curr = PAddr::from_raw(pool.load(self.head.add(N_NEXT)));
        loop {
            let k = pool.load(curr.add(N_KEY));
            if k == KEY_MAX {
                return out;
            }
            out.push(k);
            curr = PAddr::from_raw(pool.load(curr.add(N_NEXT)));
        }
    }

    /// Checks structural invariants (quiescent): strictly sorted keys,
    /// reachable tail, and no node left tagged. Returns the number of user
    /// keys. Panics on violation.
    pub fn check_invariants(&self) -> usize {
        let pool = &*self.pool;
        let mut count = 0;
        let mut prev_key = KEY_MIN;
        let mut curr = PAddr::from_raw(pool.load(self.head.add(N_NEXT)));
        loop {
            let k = pool.load(curr.add(N_KEY));
            assert!(
                k > prev_key,
                "keys must be strictly increasing: {prev_key} !< {k}"
            );
            let info = pool.load(curr.add(N_INFO));
            assert!(
                !is_tagged(info),
                "quiescent list must hold no tagged node (key {k})"
            );
            if k == KEY_MAX {
                return count;
            }
            prev_key = k;
            count += 1;
            curr = PAddr::from_raw(pool.load(curr.add(N_NEXT)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolCfg};
    use std::collections::BTreeSet;

    fn setup() -> (Arc<PmemPool>, RecoverableList, ThreadCtx) {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(8 << 20)));
        let list = RecoverableList::new(pool.clone(), 0);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        (pool, list, ctx)
    }

    #[test]
    fn empty_list_invariants() {
        let (_p, list, _ctx) = setup();
        assert_eq!(list.check_invariants(), 0);
        assert!(list.keys().is_empty());
    }

    #[test]
    fn insert_find_delete_basics() {
        let (_p, list, ctx) = setup();
        assert!(!list.find(&ctx, 10));
        assert!(list.insert(&ctx, 10));
        assert!(list.find(&ctx, 10));
        assert!(!list.insert(&ctx, 10), "duplicate insert fails");
        assert!(list.delete(&ctx, 10));
        assert!(!list.find(&ctx, 10));
        assert!(!list.delete(&ctx, 10), "absent delete fails");
        assert_eq!(list.check_invariants(), 0);
    }

    #[test]
    fn flush_discipline_is_lint_clean() {
        // The flush lint must not flag Tracking's persistence placement: no
        // redundant pwbs, no lines published before their pbarrier, and —
        // after the final psync — no dirty line left whose loss a pessimist
        // crash could surface.
        let pool = Arc::new(PmemPool::new(PoolCfg {
            lint: true,
            ..PoolCfg::model(8 << 20)
        }));
        let list = RecoverableList::new(pool.clone(), 0);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        // Construction flushes before the lint saw the stores' history are
        // not findings; start the checked window at a known-clean point.
        pool.lint_clear();
        let mut rng = 0xC0FFEEu64;
        for _ in 0..300 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 40 + 1;
            match (rng >> 20) % 3 {
                0 => {
                    list.insert(&ctx, key);
                }
                1 => {
                    list.delete(&ctx, key);
                }
                _ => {
                    list.find(&ctx, key);
                }
            }
        }
        let r = pool.lint_report();
        assert!(
            r.is_clean(),
            "tracking flush discipline violations:\n{}",
            pool.lint_report_text()
        );
    }

    #[test]
    fn keys_stay_sorted() {
        let (_p, list, ctx) = setup();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(list.insert(&ctx, k));
        }
        assert_eq!(list.keys(), vec![1, 3, 5, 7, 9]);
        assert!(list.delete(&ctx, 5));
        assert_eq!(list.keys(), vec![1, 3, 7, 9]);
        assert_eq!(list.check_invariants(), 4);
    }

    #[test]
    fn matches_reference_model_sequentially() {
        let (_p, list, ctx) = setup();
        let mut model = BTreeSet::new();
        let mut rng = 0x12345u64;
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 60 + 1;
            match (rng >> 20) % 3 {
                0 => assert_eq!(list.insert(&ctx, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(list.delete(&ctx, key), model.remove(&key), "delete {key}"),
                _ => assert_eq!(list.find(&ctx, key), model.contains(&key), "find {key}"),
            }
        }
        assert_eq!(list.keys(), model.iter().copied().collect::<Vec<_>>());
        list.check_invariants();
    }

    #[test]
    fn boundary_positions() {
        let (_p, list, ctx) = setup();
        assert!(list.insert(&ctx, 50));
        assert!(list.insert(&ctx, 1), "smallest user key at the front");
        assert!(
            list.insert(&ctx, u64::MAX - 1),
            "largest user key at the back"
        );
        assert_eq!(list.keys(), vec![1, 50, u64::MAX - 1]);
        assert!(list.delete(&ctx, 1));
        assert!(list.delete(&ctx, u64::MAX - 1));
        assert_eq!(list.keys(), vec![50]);
    }

    #[test]
    #[should_panic(expected = "between the sentinels")]
    fn sentinel_keys_rejected() {
        let (_p, list, ctx) = setup();
        list.insert(&ctx, KEY_MAX);
    }

    #[test]
    fn reattach_finds_existing_list() {
        let (p, list, ctx) = setup();
        list.insert(&ctx, 42);
        let list2 = RecoverableList::new(p, 0);
        assert_eq!(list2.keys(), vec![42]);
    }

    #[test]
    fn rd_points_to_last_op_descriptor() {
        let (p, list, ctx) = setup();
        list.insert(&ctx, 7);
        let d = Desc::from_raw(ctx.rd());
        assert_eq!(d.op_type(&p), OP_INSERT);
        assert_eq!(d.result(&p), enc_bool(true));
        list.delete(&ctx, 7);
        let d = Desc::from_raw(ctx.rd());
        assert_eq!(d.op_type(&p), OP_DELETE);
        assert_eq!(d.result(&p), enc_bool(true));
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let (p, list, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4u64 {
            let list = list.clone();
            let ctx = ThreadCtx::new(p.clone(), t as usize);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    assert!(list.insert(&ctx, t * 1000 + i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(list.check_invariants(), 200);
    }

    #[test]
    fn concurrent_mixed_ops_preserve_invariants() {
        let (p, list, _ctx) = setup();
        let mut handles = vec![];
        for t in 0..4usize {
            let list = list.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            handles.push(std::thread::spawn(move || {
                let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..500 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 40 + 1;
                    match (rng >> 32) % 3 {
                        0 => {
                            list.insert(&ctx, key);
                        }
                        1 => {
                            list.delete(&ctx, key);
                        }
                        _ => {
                            list.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        list.check_invariants();
    }

    #[test]
    fn contending_inserts_same_key_exactly_one_wins() {
        let (p, list, _ctx) = setup();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
        let mut handles = vec![];
        for t in 0..4usize {
            let list = list.clone();
            let ctx = ThreadCtx::new(p.clone(), t);
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                list.insert(&ctx, 77)
            }));
        }
        let wins: usize = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(
            wins, 1,
            "exactly one concurrent insert of the same key succeeds"
        );
        assert_eq!(list.keys(), vec![77]);
    }

    #[test]
    fn crash_swept_insert_recovers_detectably() {
        // Crash an insert at every instrumented event; after recovery the
        // response must agree with the list's state: recovered-true iff the
        // key is present exactly once, and a re-invoked op must also succeed.
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(8 << 20)));
            let list = RecoverableList::new(pool.clone(), 0);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| list.insert_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    // op completed before the crash point was reached: the
                    // sweep is over
                    assert!(r);
                    assert_eq!(list.keys(), vec![5]);
                    return;
                }
                None => {
                    let r = list.recover_insert(&ctx, 5);
                    assert!(r, "recovered insert of a fresh key must report success");
                    assert_eq!(list.keys(), vec![5], "crash_at={crash_at}");
                    list.check_invariants();
                }
            }
        }
        panic!("sweep did not terminate: operation needs more than 2000 events");
    }

    #[test]
    fn crash_swept_delete_recovers_detectably() {
        for crash_at in 0..2000 {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(8 << 20)));
            let list = RecoverableList::new(pool.clone(), 0);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(list.insert(&ctx, 5));
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| list.delete_started(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            match pre {
                Some(r) => {
                    assert!(r);
                    assert!(list.keys().is_empty());
                    return;
                }
                None => {
                    let r = list.recover_delete(&ctx, 5);
                    assert!(r, "recovered delete of a present key must report success");
                    assert!(list.keys().is_empty(), "crash_at={crash_at}");
                    list.check_invariants();
                }
            }
        }
        panic!("sweep did not terminate");
    }

    #[test]
    fn recovery_of_completed_op_returns_recorded_result() {
        let (_p, list, ctx) = setup();
        assert!(list.insert(&ctx, 9));
        // Crash struck after the return value was computed but before the
        // caller consumed it: recover must reproduce `true`, not re-insert.
        assert!(list.recover_insert(&ctx, 9));
        assert_eq!(list.keys(), vec![9], "no double insert");
    }

    #[test]
    fn ablation_configs_match_reference_model() {
        let configs = [
            ListConfig {
                traversal_flush: true,
                read_only_opt: true,
            },
            ListConfig {
                traversal_flush: false,
                read_only_opt: false,
            },
            ListConfig {
                traversal_flush: true,
                read_only_opt: false,
            },
        ];
        for cfg in configs {
            let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
            let list = RecoverableList::with_config(pool.clone(), 0, cfg);
            let ctx = ThreadCtx::new(pool, 0);
            let mut model = BTreeSet::new();
            let mut rng = 0x7777u64;
            for _ in 0..800 {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = (rng >> 33) % 40 + 1;
                match (rng >> 20) % 3 {
                    0 => assert_eq!(list.insert(&ctx, key), model.insert(key), "{cfg:?}"),
                    1 => assert_eq!(list.delete(&ctx, key), model.remove(&key), "{cfg:?}"),
                    _ => assert_eq!(list.find(&ctx, key), model.contains(&key), "{cfg:?}"),
                }
            }
            assert_eq!(
                list.keys(),
                model.iter().copied().collect::<Vec<_>>(),
                "{cfg:?}"
            );
            list.check_invariants();
        }
    }

    #[test]
    fn traversal_flush_ablation_flushes_per_visited_node() {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let list = RecoverableList::with_config(
            pool.clone(),
            0,
            ListConfig {
                traversal_flush: true,
                read_only_opt: true,
            },
        );
        let ctx = ThreadCtx::new(pool.clone(), 0);
        for k in 1..=20u64 {
            list.insert(&ctx, k);
        }
        pool.stats_reset();
        list.find(&ctx, 20); // traverses the whole list
        let s = pool.stats();
        assert!(
            s.pwb_at(crate::sites::S_TRAVERSE) >= 20,
            "naive placement must flush every visited node (got {})",
            s.pwb_at(crate::sites::S_TRAVERSE)
        );
    }

    #[test]
    fn no_read_opt_ablation_tags_on_find() {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let list = RecoverableList::with_config(
            pool.clone(),
            0,
            ListConfig {
                traversal_flush: false,
                read_only_opt: false,
            },
        );
        let ctx = ThreadCtx::new(pool.clone(), 0);
        list.insert(&ctx, 5);
        pool.stats_reset();
        assert!(list.find(&ctx, 5));
        let s = pool.stats();
        assert!(
            s.pwb_at(crate::sites::S_TAG) >= 1,
            "without the optimization a find runs the tagging phase"
        );
        list.check_invariants(); // and cleans up after itself
    }

    #[test]
    fn ablated_find_still_recovers() {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(16 << 20)));
        let list = RecoverableList::with_config(
            pool.clone(),
            0,
            ListConfig {
                traversal_flush: false,
                read_only_opt: false,
            },
        );
        let ctx = ThreadCtx::new(pool.clone(), 0);
        list.insert(&ctx, 5);
        for crash_at in [3u64, 15, 40, 90] {
            ctx.begin_op(S_CP);
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| list.find(&ctx, 5));
            pool.crash(&mut pmem::PessimistAdversary);
            let r = match pre {
                Some(r) => r,
                None => list.recover_find(&ctx, 5),
            };
            assert!(r, "crash_at={crash_at}");
            list.check_invariants();
        }
    }
}
