//! Encoding of operation responses inside descriptors.
//!
//! The paper's `result` field holds ⊥ until the operation takes effect and
//! a response afterwards. We pack responses into one 64-bit word: `0` is ⊥,
//! `1`/`2` are the booleans, and `v + 3` carries an arbitrary value `v`
//! (used by the exchanger, whose response is the partner's value). Values
//! are capped at `u64::MAX - 3` — far above any key or payload used here.

/// ⊥ — the operation has not (yet) taken effect.
pub const BOTTOM: u64 = 0;
/// Boolean `false` response.
pub const FALSE: u64 = 1;
/// Boolean `true` response.
pub const TRUE: u64 = 2;

/// Encodes a boolean response.
#[inline]
pub fn enc_bool(b: bool) -> u64 {
    if b {
        TRUE
    } else {
        FALSE
    }
}

/// Decodes a boolean response. Panics on ⊥ or a value response (a logic
/// error in the caller).
#[inline]
pub fn dec_bool(r: u64) -> bool {
    match r {
        FALSE => false,
        TRUE => true,
        other => panic!("result {other} is not a boolean response"),
    }
}

/// Encodes a value response.
#[inline]
pub fn enc_val(v: u64) -> u64 {
    debug_assert!(v <= u64::MAX - 3, "value too large to encode");
    v + 3
}

/// Decodes a value response. Panics on ⊥ or a boolean.
#[inline]
pub fn dec_val(r: u64) -> u64 {
    assert!(r >= 3, "result {r} is not a value response");
    r - 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_roundtrip() {
        assert!(dec_bool(enc_bool(true)));
        assert!(!dec_bool(enc_bool(false)));
        assert_ne!(enc_bool(false), BOTTOM);
    }

    #[test]
    fn val_roundtrip() {
        for v in [0u64, 1, 2, 3, 1 << 40] {
            assert_eq!(dec_val(enc_val(v)), v);
            assert_ne!(enc_val(v), BOTTOM);
        }
    }

    #[test]
    #[should_panic]
    fn bottom_is_not_a_bool() {
        dec_bool(BOTTOM);
    }

    #[test]
    #[should_panic]
    fn bool_is_not_a_val() {
        dec_val(TRUE);
    }
}
