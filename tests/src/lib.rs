//! Shared helpers for the cross-crate integration tests.
//!
//! The central safety property exercised here is **detectable recovery**:
//! after any crash, every operation — completed or interrupted — has a
//! definite, correct response, and the structure is uncorrupted. The
//! helpers make that checkable mechanically:
//!
//! * [`mk`] builds any evaluated algorithm on a fresh Model-mode pool;
//! * [`KeyTally`] maintains, per key, the balance of *successful* inserts
//!   minus *successful* deletes. Because set operations on the same key
//!   serialize (a successful insert and a successful delete of the same key
//!   never both "win" the same state), in any linearizable history the
//!   balance of each key is exactly its presence (0 or 1) at quiescence —
//!   regardless of interleaving. With detectable recovery, crashed
//!   operations still produce definite responses (via `recover_*`), so the
//!   balance check extends across crashes: it fails if a recovered
//!   response misreports what the operation actually did.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use bench::{build, AlgoKind, SetAlgo};
use pmem::{PmemPool, PoolCfg, ThreadCtx};

/// All algorithm variants under test: the paper's five, the Tracking BST,
/// and OneFile (measured in the paper, shown here).
pub const ALL_ALGOS: [AlgoKind; 7] = [
    AlgoKind::Tracking,
    AlgoKind::TrackingBst,
    AlgoKind::Capsules,
    AlgoKind::CapsulesOpt,
    AlgoKind::Romulus,
    AlgoKind::RedoOpt,
    AlgoKind::OneFile,
];

/// Builds `kind` on a fresh Model-mode (shadowed, crashable) pool.
pub fn mk(
    kind: AlgoKind,
    pool_bytes: usize,
    threads: usize,
    range: u64,
) -> (Arc<PmemPool>, Arc<dyn SetAlgo>) {
    let pool = Arc::new(PmemPool::new(PoolCfg::model(pool_bytes)));
    let algo = build(kind, pool.clone(), threads, range);
    (pool, algo)
}

/// Per-key balance of successful inserts minus successful deletes.
pub struct KeyTally {
    per_key: Vec<AtomicI64>,
}

impl KeyTally {
    /// Tally over keys `1..=range`.
    pub fn new(range: u64) -> KeyTally {
        KeyTally {
            per_key: (0..=range).map(|_| AtomicI64::new(0)).collect(),
        }
    }

    /// Records an insert response.
    pub fn insert(&self, key: u64, won: bool) {
        if won {
            self.per_key[key as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a delete response.
    pub fn delete(&self, key: u64, won: bool) {
        if won {
            self.per_key[key as usize].fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Asserts the balance of every key matches its presence in `algo`.
    pub fn check(&self, algo: &dyn SetAlgo, ctx: &ThreadCtx, label: &str) {
        let mut present = 0;
        for (key, bal) in self.per_key.iter().enumerate().skip(1) {
            let bal = bal.load(Ordering::Relaxed);
            assert!(
                bal == 0 || bal == 1,
                "{label}: key {key} has balance {bal} — some response was wrong"
            );
            let found = algo.find(ctx, key as u64);
            assert_eq!(
                found,
                bal == 1,
                "{label}: key {key} balance {bal} but find says {found}"
            );
            present += bal as usize;
        }
        assert_eq!(
            algo.len(),
            present,
            "{label}: structure size disagrees with tally"
        );
    }
}

/// Deterministic xorshift64* for test workloads.
pub struct Rng(pub u64);

impl Rng {
    /// Next pseudo-random u64.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}
