//! Crash-storm forensics harness for the recoverable stack.
//!
//! Runs the exact worker/recovery protocol of
//! `stack_survives_crash_storms_exactly_once` in a loop until the
//! exactly-once oracle breaks or a recovery wedges, then dumps the evidence
//! needed to reconstruct the failure offline:
//!
//! * the violation, classified (value missing / value duplicated, and where
//!   each copy sits — consumed list vs still inside the stack),
//! * a bounded walk of the post-crash chain with every node's raw words and
//!   decoded `info` state,
//! * every node line in the heap holding an anomalous value, with its
//!   **pre-crash** volatile / pending / persisted images from a
//!   [`pmem::PoolSnapshot`] taken just before the crash resolution,
//! * the descriptors referenced by those nodes' `info` tags and by each
//!   thread's `RD_q` slot (op type, result, AffectSet, WriteSet),
//! * each thread's recovery line (`CP_q`/`RD_q`), current and pre-crash.
//!
//! A watchdog thread bounds each storm iteration; if recovery livelocks
//! (e.g. an operation helping a descriptor that can never untag its node),
//! the watchdog performs the same dump against the live pool and aborts.
//!
//! Exit codes: 0 = all iterations clean, 1 = oracle violation (dump on
//! stderr), 2 = wedged recovery (dump on stderr).
//!
//! Usage: `storm_forensics [iterations]` (default 50).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use integration_tests::Rng;
use pmem::{is_tagged, PAddr, PmemPool, PoolCfg, PoolSnapshot, SeededAdversary, SiteId, ThreadCtx};
use tracking::descriptor::Desc;
use tracking::stack::node_of;
use tracking::RecoverableStack;

const THREADS: usize = 4;
const ROUNDS: usize = 6;
const WATCHDOG_SECS: u64 = 60;

// Stack node word offsets (crates/tracking/src/stack.rs layout).
const N_VALUE: u64 = 0;
const N_NEXT: u64 = 1;
const N_INFO: u64 = 2;
const N_SENTINEL: u64 = 3;

#[derive(Copy, Clone)]
enum Pending {
    None,
    Enq(u64),
    Deq,
}

/// Everything the watchdog needs to dump state while the storm thread is
/// stuck inside recovery.
struct Diag {
    pool: Arc<PmemPool>,
    /// Snapshot taken immediately before the current round's crash
    /// resolution (None until the first crash of the iteration).
    snap: Mutex<Option<PoolSnapshot>>,
    round: AtomicUsize,
    /// Index into the outcomes vector recovery is currently processing.
    recovering: AtomicUsize,
    in_recovery: AtomicBool,
    produced: Arc<Mutex<HashSet<u64>>>,
    consumed: Arc<Mutex<Vec<u64>>>,
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    for iter in 1..=iters {
        eprintln!("== storm iteration {iter}/{iters}");
        run_storm(iter);
    }
    eprintln!("all {iters} iterations clean");
}

fn run_storm(iter: usize) {
    let pool = Arc::new(PmemPool::new(PoolCfg::model(512 << 20)));
    let produced: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let diag = Arc::new(Diag {
        pool: pool.clone(),
        snap: Mutex::new(None),
        round: AtomicUsize::new(0),
        recovering: AtomicUsize::new(0),
        in_recovery: AtomicBool::new(false),
        produced: produced.clone(),
        consumed: consumed.clone(),
    });

    let (done_tx, done_rx) = std::sync::mpsc::channel::<i32>();
    let storm = {
        let diag = diag.clone();
        std::thread::spawn(move || {
            let code = storm_body(&diag);
            let _ = done_tx.send(code);
        })
    };
    match done_rx.recv_timeout(Duration::from_secs(WATCHDOG_SECS)) {
        Ok(0) => {
            storm.join().ok();
        }
        Ok(code) => {
            // Dump already printed by the storm body.
            eprintln!("iteration {iter}: VIOLATION (exit {code})");
            std::process::exit(code);
        }
        Err(_) => {
            eprintln!(
                "iteration {iter}: WEDGED after {WATCHDOG_SECS}s in round {} \
                 (in_recovery={} outcome#{})",
                diag.round.load(Ordering::Relaxed),
                diag.in_recovery.load(Ordering::Relaxed),
                diag.recovering.load(Ordering::Relaxed),
            );
            dump_state(&diag, &[]);
            std::process::exit(2);
        }
    }
}

/// One full storm (6 rounds); returns 0 if clean, 1 after dumping a
/// violation.
fn storm_body(diag: &Diag) -> i32 {
    let pool = &diag.pool;
    let s = RecoverableStack::new(pool.clone(), 0);
    for round in 0..ROUNDS {
        diag.round.store(round, Ordering::Relaxed);
        let barrier = Arc::new(Barrier::new(THREADS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let s = s.clone();
            let produced = diag.produced.clone();
            let consumed = diag.consumed.clone();
            let barrier = barrier.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool.clone(), t);
                let mut rng = Rng(((round * THREADS + t) as u64 + 1) * 0xABCD_1234);
                let mut counter = 0u64;
                barrier.wait();
                loop {
                    if stop.load(Ordering::Relaxed) && !pool.crash_ctl().raised() {
                        return (ctx, Pending::None);
                    }
                    let r = rng.next();
                    if pmem::run_crashable(|| ctx.begin_op(SiteId(0))).is_none() {
                        return (ctx, Pending::None);
                    }
                    if r & 1 == 0 {
                        counter += 1;
                        let v = (round as u64) << 32 | (t as u64) << 24 | counter;
                        produced.lock().unwrap().insert(v);
                        match pmem::run_crashable(|| s.push_started(&ctx, v)) {
                            Some(()) => {}
                            None => return (ctx, Pending::Enq(v)),
                        }
                    } else {
                        match pmem::run_crashable(|| s.pop_started(&ctx)) {
                            Some(Some(v)) => consumed.lock().unwrap().push(v),
                            Some(None) => {}
                            None => return (ctx, Pending::Deq),
                        }
                    }
                }
            }));
        }
        barrier.wait();
        std::thread::sleep(Duration::from_millis(25));
        pool.crash_ctl().raise();
        stop.store(true, Ordering::Relaxed);
        let outcomes: Vec<(ThreadCtx, Pending)> = handles
            .into_iter()
            .map(|h| h.join().expect("worker died"))
            .collect();
        pool.crash_ctl().disarm();
        *diag.snap.lock().unwrap() = Some(pool.snapshot());
        pool.crash(&mut SeededAdversary::new(((round as u64 + 1) * 104729) | 1));
        diag.in_recovery.store(true, Ordering::Relaxed);
        for (i, (ctx, pending)) in outcomes.iter().enumerate() {
            diag.recovering.store(i, Ordering::Relaxed);
            match *pending {
                Pending::None => {}
                Pending::Enq(v) => s.recover_push(ctx, v),
                Pending::Deq => {
                    if let Some(v) = s.recover_pop(ctx) {
                        diag.consumed.lock().unwrap().push(v);
                    }
                }
            }
        }
        diag.in_recovery.store(false, Ordering::Relaxed);

        // Exactly-once oracle.
        let inside: Vec<u64> = s.values();
        let consumed_now = diag.consumed.lock().unwrap().clone();
        let produced_now = diag.produced.lock().unwrap().clone();
        let mut count: HashMap<u64, (usize, usize)> = HashMap::new();
        for &v in &consumed_now {
            count.entry(v).or_default().0 += 1;
        }
        for &v in &inside {
            count.entry(v).or_default().1 += 1;
        }
        let dups: Vec<(u64, usize, usize)> = count
            .iter()
            .filter(|&(_, &(c, i))| c + i > 1)
            .map(|(&v, &(c, i))| (v, c, i))
            .collect();
        let missing: Vec<u64> = produced_now
            .iter()
            .filter(|v| !count.contains_key(v))
            .cloned()
            .collect();
        let phantom: Vec<u64> = count
            .keys()
            .filter(|v| !produced_now.contains(v))
            .cloned()
            .collect();
        if !dups.is_empty() || !missing.is_empty() || !phantom.is_empty() {
            eprintln!("VIOLATION in round {round}:");
            for &(v, c, i) in &dups {
                eprintln!("  duplicate {v:#x}: consumed {c} time(s), inside {i} time(s)");
            }
            for &v in &missing {
                eprintln!("  missing   {v:#x}");
            }
            for &v in &phantom {
                eprintln!("  phantom   {v:#x} (never produced)");
            }
            for (t, (_, p)) in outcomes.iter().enumerate() {
                let k = match p {
                    Pending::None => "none".into(),
                    Pending::Enq(v) => format!("enq {v:#x}"),
                    Pending::Deq => "deq".to_string(),
                };
                eprintln!("  t{t} pending at crash: {k}");
            }
            let anomalies: Vec<u64> = dups
                .iter()
                .map(|&(v, _, _)| v)
                .chain(missing.iter().cloned())
                .chain(phantom.iter().cloned())
                .collect();
            dump_state(diag, &anomalies);
            return 1;
        }
    }
    0
}

// ---------------------------------------------------------------------
// Forensic dump
// ---------------------------------------------------------------------

fn dump_state(diag: &Diag, anomalies: &[u64]) {
    let pool = &diag.pool;
    let snap = diag.snap.lock().unwrap();
    let top_cell = pool.root(0);

    eprintln!("-- top cell {top_cell:?}");
    dump_word_images(pool, snap.as_ref(), top_cell, "top");

    // Bounded chain walk (the pool may be mid-livelock; reads are racy but
    // the chain below a quiescent wedge is stable).
    eprintln!("-- chain from top (first 30 nodes):");
    let mut seen = HashSet::new();
    let mut cur = node_of(pool.load(top_cell));
    let mut n = 0usize;
    let mut chain_nodes = Vec::new();
    while n < 200_000 {
        if pool.load(cur.add(N_SENTINEL)) == 1 {
            eprintln!("   [{n}] sentinel {cur:?}");
            break;
        }
        if !seen.insert(cur.raw()) {
            eprintln!("   [{n}] CYCLE back to {cur:?}");
            break;
        }
        if n < 30 {
            dump_node(pool, snap.as_ref(), cur, n);
        }
        chain_nodes.push(cur);
        cur = PAddr::from_raw(pool.load(cur.add(N_NEXT)));
        n += 1;
    }
    if n >= 200_000 {
        eprintln!("   walk truncated at {n} nodes");
    }
    eprintln!("   chain length {n}");

    // Every heap node line holding an anomalous value (node lines have the
    // value in word 0; values in this harness are always >= 1<<32 so root
    // and descriptor lines can't false-positive on small integers, and a
    // descriptor line's word 0 is a packed header far from any value).
    if !anomalies.is_empty() {
        eprintln!("-- heap scan for anomalous values:");
        let anomaly_set: HashSet<u64> = anomalies.iter().cloned().collect();
        let words = snap.as_ref().map_or(0, |s| s.watermark());
        let wpl = pmem::WORDS_PER_LINE;
        for line_base in (0..words).step_by(wpl) {
            let a = PAddr::from_raw(line_base as u64);
            let v = pool.load(a);
            if anomaly_set.contains(&v) {
                eprintln!("   node line at word {line_base} (value {v:#x}):");
                dump_node(pool, snap.as_ref(), a, usize::MAX);
                let on_chain = chain_nodes.iter().any(|c| c.word() == line_base);
                eprintln!("     reachable from top: {on_chain}");
            }
        }
    }

    // Recovery lines.
    eprintln!("-- per-thread recovery lines:");
    for t in 0..THREADS {
        let line = pool.recovery_line(t);
        let cp = pool.load(line);
        let rd = pool.load(line.add(1));
        eprintln!("   t{t}: cp={cp} rd={rd:#x}");
        dump_word_images(pool, snap.as_ref(), line, &format!("t{t}.cp"));
        dump_word_images(pool, snap.as_ref(), line.add(1), &format!("t{t}.rd"));
        if rd != 0 {
            dump_desc(
                pool,
                snap.as_ref(),
                Desc::from_raw(rd),
                &format!("t{t}.rd desc"),
            );
        }
    }
}

fn dump_node(pool: &PmemPool, snap: Option<&PoolSnapshot>, node: PAddr, idx: usize) {
    let value = pool.load(node.add(N_VALUE));
    let next = pool.load(node.add(N_NEXT));
    let info = pool.load(node.add(N_INFO));
    let tag = if is_tagged(info) { " TAGGED" } else { "" };
    let pos = if idx == usize::MAX {
        String::new()
    } else {
        format!("[{idx}] ")
    };
    eprintln!("   {pos}{node:?}: value={value:#x} next={next:#x} info={info:#x}{tag}");
    if let Some(s) = snap {
        let w = node.word();
        eprintln!(
            "     pre-crash images (vol/pend/pers): value {:?}/{:?}/{:?} next {:?}/{:?}/{:?} info {:?}/{:?}/{:?}",
            s.word(w).map(Hex),
            s.pending_word(w).map(Hex),
            s.persisted_word(w).map(Hex),
            s.word(w + 1).map(Hex),
            s.pending_word(w + 1).map(Hex),
            s.persisted_word(w + 1).map(Hex),
            s.word(w + 2).map(Hex),
            s.pending_word(w + 2).map(Hex),
            s.persisted_word(w + 2).map(Hex),
        );
    }
    if info != 0 {
        dump_desc(pool, snap, Desc::from_raw(info), "     info desc");
    }
}

fn dump_desc(pool: &PmemPool, snap: Option<&PoolSnapshot>, desc: Desc, label: &str) {
    let op = desc.op_type(pool);
    let result = desc.result(pool);
    let success = desc.success_result(pool);
    eprintln!(
        "{label}: addr={:?} op={op} result={result:#x} success_result={success:#x}",
        desc.addr()
    );
    for i in 0..desc.affect_len(pool) {
        let e = desc.affect(pool, i);
        eprintln!(
            "       affect[{i}]: info_addr={:?} observed={:#x} untag_on_cleanup={} current={:#x}",
            e.info_addr,
            e.observed,
            e.untag_on_cleanup,
            pool.load(e.info_addr)
        );
    }
    for j in 0..desc.write_len(pool) {
        let w = desc.write(pool, j);
        eprintln!(
            "       write[{j}]: field={:?} old={:#x} new={:#x} current={:#x}",
            w.field,
            w.old,
            w.new,
            pool.load(w.field)
        );
    }
    if let Some(s) = snap {
        let rw = desc.result_addr().word();
        eprintln!(
            "       pre-crash result images (vol/pend/pers): {:?}/{:?}/{:?}",
            s.word(rw).map(Hex),
            s.pending_word(rw).map(Hex),
            s.persisted_word(rw).map(Hex),
        );
    }
}

fn dump_word_images(pool: &PmemPool, snap: Option<&PoolSnapshot>, a: PAddr, label: &str) {
    let now = pool.load(a);
    match snap {
        Some(s) => {
            let w = a.word();
            eprintln!(
                "   {label}: now={now:#x} pre-crash vol/pend/pers = {:?}/{:?}/{:?}",
                s.word(w).map(Hex),
                s.pending_word(w).map(Hex),
                s.persisted_word(w).map(Hex),
            );
        }
        None => eprintln!("   {label}: now={now:#x} (no pre-crash snapshot)"),
    }
}

/// Hex-formatting wrapper so `Option<u64>` debug output stays readable.
struct Hex(u64);

impl std::fmt::Debug for Hex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}
