//! Pool- and algorithm-level behavior of the flush-elision layer
//! (`pmem::flushopt`, armed with `PoolCfg::flushopt`).
//!
//! The layer's unit tests (in `pmem`) cover its state machine in
//! isolation; these tests check the *wiring*: that elision and coalescing
//! are counted where the stats say, that a deferred flush is never
//! silently treated as durable (the lint and the crash model both still
//! see the line as dirty until the draining fence runs), and that the
//! Capsules Full-persist list — the traverse-heavy workload the layer was
//! built for — actually sheds its redundant flushes without changing a
//! single operation result.

use std::sync::Arc;

use pmem::{LintKind, PessimistAdversary, PmemPool, PoolCfg, SiteId, ThreadCtx};

fn flushopt_pool(bytes: usize) -> PmemPool {
    PmemPool::new(PoolCfg {
        flushopt: true,
        ..PoolCfg::model(bytes)
    })
}

/// A `pwb` of a line flushed-and-fenced since its last store executes
/// nothing and is counted as elided; a re-dirtied line defers, coalesces
/// duplicates, and drains exactly one real flush at the fence.
#[test]
fn elision_and_coalescing_are_counted_and_sound() {
    let pool = flushopt_pool(1 << 20);
    let a = pool.alloc_lines(1);
    let site = SiteId(3);

    pool.store(a, 7);
    pool.pwb(a, site); // dirty: parked in the combining buffer
    let s = pool.stats();
    assert_eq!(s.pwb_at(site), 0, "a deferred pwb must not execute yet");
    pool.psync(); // drains: the one real flush happens here
    let s = pool.stats();
    assert_eq!(s.pwb_at(site), 1);
    assert_eq!(s.pwb_elided_total(), 0);

    pool.pwb(a, site); // clean line: elided
    pool.pwb(a, site); // still elided
    let s = pool.stats();
    assert_eq!(s.pwb_at(site), 1, "re-flush of a clean line executed");
    assert_eq!(s.pwb_elided_total(), 2);

    pool.store(a, 8); // re-dirty
    pool.pwb(a, site); // deferred again
    pool.pwb(a, site); // coalesced into the buffered entry
    pool.psync();
    let s = pool.stats();
    assert_eq!(s.pwb_at(site), 2, "one drained flush per dirty line");
    assert_eq!(s.pwb_elided_total(), 3, "the coalesced duplicate counts");

    // Durability: the drained flush really committed the store.
    pool.crash(&mut PessimistAdversary);
    assert_eq!(pool.load(a), 8, "drained flush lost the line");
}

/// Fences elide only inside a coalescible region and only when nothing —
/// buffered or executed-but-unfenced — is pending; everywhere else they
/// execute in full.
#[test]
fn fences_coalesce_only_inside_regions_with_no_obligations() {
    let pool = flushopt_pool(1 << 20);
    let a = pool.alloc_lines(1);
    pool.store(a, 1);
    pool.pwb(a, SiteId(1));
    pool.psync(); // drain; everything clean and fenced now
    let base = pool.stats();

    // Outside any region: an identity fence still executes.
    pool.psync();
    let s = pool.stats();
    assert_eq!(s.psync, base.psync + 1);
    assert_eq!(s.psync_coalesced, base.psync_coalesced);

    {
        let _region = pool.coalesce_fences();
        pool.psync(); // identity: coalesced away
        pool.pfence(); // likewise
        let s = pool.stats();
        assert_eq!(s.psync, base.psync + 1, "in-region identity fence ran");
        assert_eq!(s.psync_coalesced, base.psync_coalesced + 2);

        // A deferred pwb is an obligation: the next fence must execute
        // (and drain) even inside the region.
        pool.store(a, 2);
        pool.pwb(a, SiteId(1));
        pool.psync();
        let s = pool.stats();
        assert_eq!(s.psync, base.psync + 2, "draining fence was elided");
        assert_eq!(s.psync_coalesced, base.psync_coalesced + 2);
    }

    // Region closed: identity fences execute again.
    pool.psync();
    let s = pool.stats();
    assert_eq!(s.psync, base.psync + 3);
    assert_eq!(s.psync_coalesced, base.psync_coalesced + 2);
}

/// A crash between a deferred `pwb` and the fence that would have drained
/// it must lose the line — and the lint must still report it as
/// unflushed-dirty. The buffer parks the flush; it never *performs* it, so
/// neither the crash model nor the lint may treat the line as written
/// back. (This is the "deferral is not durability" half of the soundness
/// argument; the elision half is the elided-dirty-pwb cross-check.)
#[test]
fn crash_between_deferred_pwb_and_fence_loses_the_line_loudly() {
    let pool = PmemPool::new(PoolCfg {
        flushopt: true,
        lint: true,
        ..PoolCfg::model(1 << 20)
    });
    let a = pool.alloc_lines(1);
    pool.store(a, 99);
    pool.pwb(a, SiteId(4)); // parked in the combining buffer
    assert_eq!(pool.stats().pwb_at(SiteId(4)), 0);

    pool.crash(&mut PessimistAdversary);
    assert_eq!(
        pool.load(a),
        0,
        "a never-executed (deferred) pwb must not persist the store"
    );
    let report = pool.lint_report();
    assert!(
        report
            .of_kind(LintKind::UnflushedDirty)
            .any(|d| d.line == a.line()),
        "lint lost track of the line parked in the combining buffer: {:?}",
        report.diags
    );
}

/// The Capsules Full-persist list sheds its redundant traverse flushes
/// under the layer — with bit-identical operation results to the layer-off
/// run, and the elided volume accounted at the traverse site.
#[test]
fn capsules_full_elides_traverse_flushes_without_changing_results() {
    let run = |flushopt: bool| {
        let pool = Arc::new(PmemPool::new(PoolCfg {
            flushopt,
            ..PoolCfg::model(16 << 20)
        }));
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let set = bench::adapter::build(bench::AlgoKind::Capsules, pool.clone(), 1, 32);
        let mut results = Vec::new();
        let mut rng = 0x0BAD_5EEDu64;
        for i in 0..96u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (rng >> 33) % 30 + 1;
            results.push(match i % 4 {
                0 | 1 => set.insert(&ctx, key),
                2 => set.delete(&ctx, key),
                _ => set.find(&ctx, key),
            });
        }
        (results, pool.stats())
    };

    let (off_results, off_stats) = run(false);
    let (on_results, on_stats) = run(true);
    assert_eq!(
        off_results, on_results,
        "flushopt changed operation results"
    );

    let traverse = capsules::sites::C_TRAVERSE;
    assert!(
        on_stats.pwb_at(traverse) * 5 <= off_stats.pwb_at(traverse),
        "traverse flushes should drop >=5x: {} -> {}",
        off_stats.pwb_at(traverse),
        on_stats.pwb_at(traverse)
    );
    assert!(
        on_stats.pwb_elided_per_site[traverse.0 as usize] > 0,
        "elisions must be attributed to the traverse site"
    );
    assert!(
        on_stats.psync_coalesced > 0,
        "the traverse region's identity fences should coalesce"
    );
    assert!(
        on_stats.pwb_total() <= off_stats.pwb_total(),
        "the layer may only remove flushes"
    );
}
