//! Cross-crate exchanger tests: concurrent pairing audits and crashes
//! during an in-flight exchange with a live partner.

use std::sync::Arc;

use pmem::{PmemPool, PoolCfg, SeededAdversary, SiteId, ThreadCtx};
use tracking::RecoverableExchanger;

fn setup() -> (Arc<PmemPool>, RecoverableExchanger) {
    let pool = Arc::new(PmemPool::new(PoolCfg::model(128 << 20)));
    let ex = RecoverableExchanger::new(pool.clone(), 0);
    (pool, ex)
}

/// Repeated pairing rounds with an even crowd: every round must produce a
/// perfect mutual matching with no value lost or duplicated.
#[test]
fn repeated_rounds_always_pair_perfectly() {
    let (pool, ex) = setup();
    for round in 0..10u64 {
        let mut handles = Vec::new();
        for t in 0..4usize {
            let ex = ex.clone();
            let ctx = ThreadCtx::new(pool.clone(), t);
            handles.push(std::thread::spawn(move || {
                ex.exchange(&ctx, round * 100 + t as u64, 200_000_000)
                    .expect("even crowd: everyone pairs")
            }));
        }
        let got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..4).map(|t| round * 100 + t).collect::<Vec<_>>(),
            "round {round}: values lost or duplicated"
        );
        assert!(ex.is_free(), "round {round}: slot must end free");
    }
}

/// Crash a two-party exchange at many different points (the global
/// countdown may stop either party); after recovery of whichever side
/// crashed, the pair of responses must be consistent: either a full mutual
/// swap or a clean double-timeout — never a half-exchange.
#[test]
fn crashed_exchange_recovers_consistently() {
    for crash_after in [10u64, 40, 80, 130, 200, 320, 500] {
        let (pool, ex) = setup();
        let waiter = ThreadCtx::new(pool.clone(), 0);
        let collider = ThreadCtx::new(pool.clone(), 1);
        waiter.begin_op(SiteId(0));
        pool.crash_ctl().arm_after(crash_after);
        let h = {
            let ex = ex.clone();
            let collider = collider.clone();
            std::thread::spawn(move || {
                pmem::run_crashable(|| ex.exchange(&collider, 777, 2_000_000))
            })
        };
        let w_pre = pmem::run_crashable(|| ex.exchange_started(&waiter, 111, 100_000));
        let c_pre = h.join().unwrap();
        pool.crash_ctl().disarm();
        let crashed = w_pre.is_none() || c_pre.is_none();
        if crashed {
            pool.crash(&mut SeededAdversary::new(crash_after | 1));
        }
        let w = match w_pre {
            Some(v) => v,
            None => ex.recover_exchange(&waiter, 111, 10),
        };
        let c = match c_pre {
            Some(v) => v,
            None => ex.recover_exchange(&collider, 777, 10),
        };
        assert!(
            (w == Some(777) && c == Some(111)) || (w.is_none() && c.is_none()),
            "crash_after={crash_after}: inconsistent exchange outcome (w={w:?}, c={c:?})"
        );
        assert!(
            ex.is_free(),
            "crash_after={crash_after}: slot must end free"
        );
    }
}

/// An odd participant must never fabricate a partner: with three threads
/// and big budgets, exactly one thread times out (via cancel) and the other
/// two pair mutually.
#[test]
fn odd_crowd_leaves_exactly_one_unpaired() {
    let (pool, ex) = setup();
    let mut handles = Vec::new();
    for t in 0..3usize {
        let ex = ex.clone();
        let ctx = ThreadCtx::new(pool.clone(), t);
        handles.push(std::thread::spawn(move || {
            ex.exchange(&ctx, t as u64, 2_000_000)
        }));
    }
    let got: Vec<Option<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let paired: Vec<usize> = (0..3).filter(|&t| got[t].is_some()).collect();
    assert_eq!(paired.len(), 2, "exactly two of three pair up: {got:?}");
    let (a, b) = (paired[0], paired[1]);
    assert_eq!(got[a], Some(b as u64));
    assert_eq!(got[b], Some(a as u64));
    assert!(ex.is_free());
}
