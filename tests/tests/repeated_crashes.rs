//! Crashes during recovery: the paper's model allows a thread to "incur
//! multiple crashes while executing Op and/or Op.Recover". These tests
//! crash the recovery function itself, repeatedly, and require the final
//! outcome to still be correct.

use integration_tests::{mk, ALL_ALGOS};
use pmem::{SeededAdversary, SiteId, ThreadCtx};

/// Crash an insert, then crash its recovery k times before letting it
/// finish. Whatever the final recovery returns must agree with the
/// structure's state.
#[test]
fn recovery_survives_repeated_crashes() {
    for kind in ALL_ALGOS {
        for first_crash in [3u64, 17, 45, 90, 160, 300] {
            let (pool, algo) = mk(kind, 128 << 20, 2, 32);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(algo.insert(&ctx, 10));
            ctx.begin_op(SiteId(0));
            pool.crash_ctl().arm_after(first_crash);
            let pre = pmem::run_crashable(|| algo.insert_started(&ctx, 5));
            if pre.is_some() {
                continue; // ran to completion before the crash point
            }
            pool.crash(&mut SeededAdversary::new(first_crash | 1));
            // Crash the recovery itself a few times with shrinking windows.
            let mut response = None;
            for (attempt, window) in [7u64, 23, 61, 150, 400, 100_000].iter().enumerate() {
                algo.recover_structure();
                pool.crash_ctl().arm_after(*window);
                match pmem::run_crashable(|| algo.recover_insert(&ctx, 5)) {
                    Some(r) => {
                        pool.crash_ctl().disarm();
                        response = Some(r);
                        break;
                    }
                    None => {
                        pool.crash(&mut SeededAdversary::new(
                            (attempt as u64 + 2).wrapping_mul(0x9E3779B97F4A7C15) | 1,
                        ));
                    }
                }
            }
            let response = response.expect("recovery must eventually complete");
            assert!(
                response,
                "{kind:?} first_crash={first_crash}: insert of a fresh key must succeed"
            );
            assert!(algo.find(&ctx, 5), "{kind:?} first_crash={first_crash}");
            assert_eq!(algo.len(), 2, "{kind:?} first_crash={first_crash}");
        }
    }
}

/// The recovery function of a *completed* operation must be idempotent:
/// calling it many times keeps returning the recorded response without
/// re-executing the operation.
#[test]
fn recovery_of_completed_op_is_idempotent() {
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 64 << 20, 2, 32);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        assert!(algo.insert(&ctx, 9));
        for _ in 0..5 {
            assert!(
                algo.recover_insert(&ctx, 9),
                "{kind:?}: must replay the response"
            );
            assert_eq!(algo.len(), 1, "{kind:?}: must not re-execute the insert");
        }
        assert!(algo.delete(&ctx, 9));
        for _ in 0..5 {
            assert!(algo.recover_delete(&ctx, 9), "{kind:?}");
            assert_eq!(algo.len(), 0, "{kind:?}: must not re-execute the delete");
        }
    }
}

/// Recovery invoked when nothing crashed mid-operation (`CP_q = 0`): the
/// system re-invokes the operation — it must behave like a fresh call.
#[test]
fn recovery_with_clean_checkpoint_reinvokes() {
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 64 << 20, 2, 32);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        // CP_q = 0, RD_q = initial: a crash fell before the op started.
        ctx.begin_op(SiteId(0));
        assert!(
            algo.recover_insert(&ctx, 4),
            "{kind:?}: re-invoked insert succeeds"
        );
        assert_eq!(algo.len(), 1, "{kind:?}");
        ctx.begin_op(SiteId(0));
        assert!(
            algo.recover_delete(&ctx, 4),
            "{kind:?}: re-invoked delete succeeds"
        );
        assert_eq!(algo.len(), 0, "{kind:?}");
    }
}
