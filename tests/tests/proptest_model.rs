//! Randomized model testing: arbitrary operation sequences (with and
//! without injected crashes) must track a sequential reference model, for
//! every implementation. Sequences come from a seeded xorshift64* generator
//! (the workspace builds offline, so no proptest); every failing case is
//! reproducible from the printed case index and seed.

use bench::AlgoKind;
use integration_tests::{mk, Rng, ALL_ALGOS};
use pmem::{SeededAdversary, SiteId, ThreadCtx};

#[derive(Copy, Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    Find(u64),
}

fn gen_ops(rng: &mut Rng, range: u64, max_len: usize) -> Vec<Op> {
    let len = (rng.next() as usize % max_len).max(1);
    (0..len)
        .map(|_| {
            let r = rng.next();
            let key = (r >> 8) % range + 1;
            match r % 3 {
                0 => Op::Insert(key),
                1 => Op::Delete(key),
                _ => Op::Find(key),
            }
        })
        .collect()
}

/// Applies `ops` sequentially and compares every response with `BTreeSet`.
fn check_sequential(kind: AlgoKind, ops: &[Op], case: u64) {
    let (pool, algo) = mk(kind, 128 << 20, 2, 64);
    let ctx = ThreadCtx::new(pool, 0);
    let mut model = std::collections::BTreeSet::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => assert_eq!(
                algo.insert(&ctx, k),
                model.insert(k),
                "{kind:?} case {case} op {i}: insert {k}"
            ),
            Op::Delete(k) => assert_eq!(
                algo.delete(&ctx, k),
                model.remove(&k),
                "{kind:?} case {case} op {i}: delete {k}"
            ),
            Op::Find(k) => assert_eq!(
                algo.find(&ctx, k),
                model.contains(&k),
                "{kind:?} case {case} op {i}: find {k}"
            ),
        }
    }
    assert_eq!(algo.len(), model.len(), "{kind:?} case {case}: final size");
}

/// Applies `ops` with a crash injected into each update at a pseudo-random
/// point; responses come from recovery where the crash fired.
fn check_crashy(kind: AlgoKind, ops: &[Op], seed: u64) {
    let (pool, algo) = mk(kind, 256 << 20, 2, 32);
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut model = std::collections::BTreeSet::new();
    let mut s = seed | 1;
    for (i, op) in ops.iter().enumerate() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let crash_after = (s >> 33) % 400;
        let (key, is_insert) = match *op {
            Op::Insert(k) => (k, true),
            Op::Delete(k) => (k, false),
            Op::Find(k) => {
                assert_eq!(algo.find(&ctx, k), model.contains(&k), "{kind:?} op {i}");
                continue;
            }
        };
        ctx.begin_op(SiteId(0));
        pool.crash_ctl().arm_after(crash_after);
        let pre = pmem::run_crashable(|| {
            if is_insert {
                algo.insert_started(&ctx, key)
            } else {
                algo.delete_started(&ctx, key)
            }
        });
        pool.crash_ctl().disarm();
        let response = match pre {
            Some(r) => r,
            None => {
                pool.crash(&mut SeededAdversary::new(s));
                algo.recover_structure();
                if is_insert {
                    algo.recover_insert(&ctx, key)
                } else {
                    algo.recover_delete(&ctx, key)
                }
            }
        };
        let expected = if is_insert {
            model.insert(key)
        } else {
            model.remove(&key)
        };
        assert_eq!(
            response, expected,
            "{kind:?} seed {seed:#x} op {i}: key {key}"
        );
    }
    assert_eq!(
        algo.len(),
        model.len(),
        "{kind:?} seed {seed:#x}: final size"
    );
}

const CASES: u64 = 12;

fn sequential_cases(kind: AlgoKind, seed: u64) {
    let mut rng = Rng(seed);
    for case in 0..CASES {
        let ops = gen_ops(&mut rng, 64, 120);
        check_sequential(kind, &ops, case);
    }
}

fn crashy_cases(kind: AlgoKind, seed: u64) {
    let mut rng = Rng(seed);
    for _case in 0..CASES {
        let ops = gen_ops(&mut rng, 32, 60);
        let s = rng.next();
        check_crashy(kind, &ops, s);
    }
}

#[test]
fn tracking_list_matches_model() {
    sequential_cases(AlgoKind::Tracking, 0x7E57_0001);
}

#[test]
fn tracking_bst_matches_model() {
    sequential_cases(AlgoKind::TrackingBst, 0x7E57_0002);
}

#[test]
fn capsules_opt_matches_model() {
    sequential_cases(AlgoKind::CapsulesOpt, 0x7E57_0003);
}

#[test]
fn romulus_matches_model() {
    sequential_cases(AlgoKind::Romulus, 0x7E57_0004);
}

#[test]
fn redo_opt_matches_model() {
    sequential_cases(AlgoKind::RedoOpt, 0x7E57_0005);
}

#[test]
fn tracking_list_matches_model_under_crashes() {
    crashy_cases(AlgoKind::Tracking, 0x7E57_0011);
}

#[test]
fn tracking_bst_matches_model_under_crashes() {
    crashy_cases(AlgoKind::TrackingBst, 0x7E57_0012);
}

#[test]
fn capsules_opt_matches_model_under_crashes() {
    crashy_cases(AlgoKind::CapsulesOpt, 0x7E57_0013);
}

#[test]
fn romulus_matches_model_under_crashes() {
    crashy_cases(AlgoKind::Romulus, 0x7E57_0014);
}

#[test]
fn redo_opt_matches_model_under_crashes() {
    crashy_cases(AlgoKind::RedoOpt, 0x7E57_0015);
}

/// Deterministic cross-implementation agreement: every algorithm must give
/// byte-identical responses on the same operation sequence.
#[test]
fn all_algorithms_agree_on_a_long_sequence() {
    let mut s = 0x600D_F00Du64;
    let ops: Vec<Op> = (0..500)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (s >> 33) % 48 + 1;
            match (s >> 20) % 3 {
                0 => Op::Insert(key),
                1 => Op::Delete(key),
                _ => Op::Find(key),
            }
        })
        .collect();
    let mut reference: Option<Vec<bool>> = None;
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 256 << 20, 2, 64);
        let ctx = ThreadCtx::new(pool, 0);
        let responses: Vec<bool> = ops
            .iter()
            .map(|op| match *op {
                Op::Insert(k) => algo.insert(&ctx, k),
                Op::Delete(k) => algo.delete(&ctx, k),
                Op::Find(k) => algo.find(&ctx, k),
            })
            .collect();
        match &reference {
            None => reference = Some(responses),
            Some(want) => assert_eq!(&responses, want, "{kind:?} diverged"),
        }
    }
}
