//! Property-based testing: arbitrary operation sequences (with and without
//! injected crashes) must track a sequential reference model, for every
//! implementation.

use bench::AlgoKind;
use integration_tests::{mk, ALL_ALGOS};
use pmem::{SeededAdversary, SiteId, ThreadCtx};
use proptest::prelude::*;

#[derive(Copy, Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    Find(u64),
}

fn op_strategy(range: u64) -> impl Strategy<Value = Op> {
    (0u8..3, 1..=range).prop_map(|(kind, key)| match kind {
        0 => Op::Insert(key),
        1 => Op::Delete(key),
        _ => Op::Find(key),
    })
}

/// Applies `ops` sequentially and compares every response with `BTreeSet`.
fn check_sequential(kind: AlgoKind, ops: &[Op]) {
    let (pool, algo) = mk(kind, 128 << 20, 2, 64);
    let ctx = ThreadCtx::new(pool, 0);
    let mut model = std::collections::BTreeSet::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(k) => {
                assert_eq!(algo.insert(&ctx, k), model.insert(k), "{kind:?} op {i}: insert {k}")
            }
            Op::Delete(k) => {
                assert_eq!(algo.delete(&ctx, k), model.remove(&k), "{kind:?} op {i}: delete {k}")
            }
            Op::Find(k) => {
                assert_eq!(algo.find(&ctx, k), model.contains(&k), "{kind:?} op {i}: find {k}")
            }
        }
    }
    assert_eq!(algo.len(), model.len(), "{kind:?}: final size");
}

/// Applies `ops` with a crash injected into each update at a pseudo-random
/// point; responses come from recovery where the crash fired.
fn check_crashy(kind: AlgoKind, ops: &[Op], seed: u64) {
    let (pool, algo) = mk(kind, 256 << 20, 2, 32);
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut model = std::collections::BTreeSet::new();
    let mut s = seed | 1;
    for (i, op) in ops.iter().enumerate() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let crash_after = (s >> 33) % 400;
        let (key, is_insert) = match *op {
            Op::Insert(k) => (k, true),
            Op::Delete(k) => (k, false),
            Op::Find(k) => {
                assert_eq!(algo.find(&ctx, k), model.contains(&k), "{kind:?} op {i}");
                continue;
            }
        };
        ctx.begin_op(SiteId(0));
        pool.crash_ctl().arm_after(crash_after);
        let pre = pmem::run_crashable(|| {
            if is_insert {
                algo.insert_started(&ctx, key)
            } else {
                algo.delete_started(&ctx, key)
            }
        });
        pool.crash_ctl().disarm();
        let response = match pre {
            Some(r) => r,
            None => {
                pool.crash(&mut SeededAdversary::new(s));
                algo.recover_structure();
                if is_insert {
                    algo.recover_insert(&ctx, key)
                } else {
                    algo.recover_delete(&ctx, key)
                }
            }
        };
        let expected = if is_insert { model.insert(key) } else { model.remove(&key) };
        assert_eq!(response, expected, "{kind:?} op {i}: key {key}");
    }
    assert_eq!(algo.len(), model.len(), "{kind:?}: final size");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn tracking_list_matches_model(ops in prop::collection::vec(op_strategy(64), 1..120)) {
        check_sequential(AlgoKind::Tracking, &ops);
    }

    #[test]
    fn tracking_bst_matches_model(ops in prop::collection::vec(op_strategy(64), 1..120)) {
        check_sequential(AlgoKind::TrackingBst, &ops);
    }

    #[test]
    fn capsules_opt_matches_model(ops in prop::collection::vec(op_strategy(64), 1..120)) {
        check_sequential(AlgoKind::CapsulesOpt, &ops);
    }

    #[test]
    fn romulus_matches_model(ops in prop::collection::vec(op_strategy(64), 1..120)) {
        check_sequential(AlgoKind::Romulus, &ops);
    }

    #[test]
    fn redo_opt_matches_model(ops in prop::collection::vec(op_strategy(64), 1..120)) {
        check_sequential(AlgoKind::RedoOpt, &ops);
    }

    #[test]
    fn tracking_list_matches_model_under_crashes(
        ops in prop::collection::vec(op_strategy(32), 1..60),
        seed in any::<u64>(),
    ) {
        check_crashy(AlgoKind::Tracking, &ops, seed);
    }

    #[test]
    fn tracking_bst_matches_model_under_crashes(
        ops in prop::collection::vec(op_strategy(32), 1..60),
        seed in any::<u64>(),
    ) {
        check_crashy(AlgoKind::TrackingBst, &ops, seed);
    }

    #[test]
    fn capsules_opt_matches_model_under_crashes(
        ops in prop::collection::vec(op_strategy(32), 1..60),
        seed in any::<u64>(),
    ) {
        check_crashy(AlgoKind::CapsulesOpt, &ops, seed);
    }

    #[test]
    fn romulus_matches_model_under_crashes(
        ops in prop::collection::vec(op_strategy(32), 1..60),
        seed in any::<u64>(),
    ) {
        check_crashy(AlgoKind::Romulus, &ops, seed);
    }

    #[test]
    fn redo_opt_matches_model_under_crashes(
        ops in prop::collection::vec(op_strategy(32), 1..60),
        seed in any::<u64>(),
    ) {
        check_crashy(AlgoKind::RedoOpt, &ops, seed);
    }
}

/// Deterministic cross-implementation agreement: every algorithm must give
/// byte-identical responses on the same operation sequence.
#[test]
fn all_algorithms_agree_on_a_long_sequence() {
    let mut s = 0x600D_F00Du64;
    let ops: Vec<Op> = (0..500)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (s >> 33) % 48 + 1;
            match (s >> 20) % 3 {
                0 => Op::Insert(key),
                1 => Op::Delete(key),
                _ => Op::Find(key),
            }
        })
        .collect();
    let mut reference: Option<Vec<bool>> = None;
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 256 << 20, 2, 64);
        let ctx = ThreadCtx::new(pool, 0);
        let responses: Vec<bool> = ops
            .iter()
            .map(|op| match *op {
                Op::Insert(k) => algo.insert(&ctx, k),
                Op::Delete(k) => algo.delete(&ctx, k),
                Op::Find(k) => algo.find(&ctx, k),
            })
            .collect();
        match &reference {
            None => reference = Some(responses),
            Some(want) => assert_eq!(&responses, want, "{kind:?} diverged"),
        }
    }
}
