//! System-wide crash under concurrency: several threads hammer the
//! structure, a broadcast crash stops every thread mid-operation, the
//! adversary destroys unflushed lines, every thread runs its recovery
//! function — and then *every* operation in the history must have a
//! definite, mutually consistent response.
//!
//! The oracle is the per-key balance ([`integration_tests::KeyTally`]):
//! in a linearizable set history, successful inserts and deletes of a key
//! strictly alternate, so at quiescence the balance equals presence. A
//! recovered operation that lies about what it did breaks the balance.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use bench::AlgoKind;
use integration_tests::{mk, KeyTally, Rng};
use pmem::{SeededAdversary, SiteId, ThreadCtx};

const THREADS: usize = 4;
const RANGE: u64 = 24;
const ROUNDS: usize = 8;

#[derive(Copy, Clone)]
enum Pending {
    None,
    Insert(u64),
    Delete(u64),
}

fn crash_storm(kind: AlgoKind) {
    let (pool, algo) = mk(kind, 512 << 20, THREADS, RANGE);
    let tally = Arc::new(KeyTally::new(RANGE));
    let main_ctx = ThreadCtx::new(pool.clone(), THREADS); // observer slot

    for round in 0..ROUNDS {
        let barrier = Arc::new(Barrier::new(THREADS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let algo = algo.clone();
            let tally = tally.clone();
            let barrier = barrier.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool.clone(), t);
                let mut rng = Rng(((round as u64) << 32) | ((t as u64 + 1) * 0x9E37));
                barrier.wait();
                loop {
                    if stop.load(Ordering::Relaxed) && !pool.crash_ctl().raised() {
                        // graceful end (crash already resolved this round)
                        return (ctx, Pending::None);
                    }
                    let r = rng.next();
                    let key = r % RANGE + 1;
                    // The system step: if the crash hits here, the op never
                    // started and needs no response.
                    if pmem::run_crashable(|| ctx.begin_op(SiteId(0))).is_none() {
                        return (ctx, Pending::None);
                    }
                    match r % 3 {
                        0 => match pmem::run_crashable(|| algo.insert_started(&ctx, key)) {
                            Some(won) => tally.insert(key, won),
                            None => return (ctx, Pending::Insert(key)),
                        },
                        1 => match pmem::run_crashable(|| algo.delete_started(&ctx, key)) {
                            Some(won) => tally.delete(key, won),
                            None => return (ctx, Pending::Delete(key)),
                        },
                        _ => {
                            if pmem::run_crashable(|| algo.find(&ctx, key)).is_none() {
                                return (ctx, Pending::None); // read-only: no effect
                            }
                        }
                    }
                }
            }));
        }
        barrier.wait();
        // Let the threads work, then pull the plug on everyone at once.
        std::thread::sleep(std::time::Duration::from_millis(30));
        pool.crash_ctl().raise();
        stop.store(true, Ordering::Relaxed);
        let outcomes: Vec<(ThreadCtx, Pending)> = handles
            .into_iter()
            .map(|h| h.join().expect("worker died"))
            .collect();

        // All threads are stopped: resolve the crash and recover.
        pool.crash(&mut SeededAdversary::new(
            ((round as u64 + 1) * 0xDEAD_BEEF) | 1,
        ));
        algo.recover_structure();
        for (ctx, pending) in &outcomes {
            match *pending {
                Pending::None => {}
                Pending::Insert(key) => tally.insert(key, algo.recover_insert(ctx, key)),
                Pending::Delete(key) => tally.delete(key, algo.recover_delete(ctx, key)),
            }
        }
        tally.check(
            &*algo,
            &main_ctx,
            &format!("{kind:?} after crash round {round}"),
        );
    }

    // The structure must still be fully operational after all the storms.
    let ctx = ThreadCtx::new(pool, 0);
    let probe = RANGE + 1 - 1; // reuse top key
    let had = algo.find(&ctx, probe);
    if had {
        assert!(algo.delete(&ctx, probe));
    }
    assert!(algo.insert(&ctx, probe));
    assert!(algo.find(&ctx, probe));
}

#[test]
fn tracking_list_survives_crash_storms() {
    crash_storm(AlgoKind::Tracking);
}

#[test]
fn tracking_bst_survives_crash_storms() {
    crash_storm(AlgoKind::TrackingBst);
}

#[test]
fn capsules_opt_survives_crash_storms() {
    crash_storm(AlgoKind::CapsulesOpt);
}

#[test]
fn romulus_survives_crash_storms() {
    crash_storm(AlgoKind::Romulus);
}

#[test]
fn redo_opt_survives_crash_storms() {
    crash_storm(AlgoKind::RedoOpt);
}

#[test]
fn onefile_survives_crash_storms() {
    crash_storm(AlgoKind::OneFile);
}
