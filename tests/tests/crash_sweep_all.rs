//! Crash-at-every-step detectability sweeps, uniformly across all six
//! implementations and under two different crash adversaries.
//!
//! For each algorithm: prefill a small set, then run one update operation
//! with a crash injected after exactly `n` instrumented persistent-memory
//! events, for every `n` until the operation completes crash-free. After
//! each crash, the adversary destroys (pessimist) or selectively retains
//! (seeded) the unflushed cache lines; the recovery function must then
//! return the *correct* response and leave the structure in the correct
//! state. This is the paper's definition of detectable recovery, checked
//! exhaustively.

use bench::AlgoKind;
use integration_tests::{mk, Rng, ALL_ALGOS};
use pmem::{CrashAdversary, PessimistAdversary, SeededAdversary, SiteId, ThreadCtx};

const POOL: usize = 64 << 20;

fn sweep_insert(kind: AlgoKind, adversary: &mut dyn FnMut(u64) -> Box<dyn CrashAdversary>) {
    for crash_at in 0..6000 {
        let (pool, algo) = mk(kind, POOL, 4, 64);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        // prefill so searches traverse a few nodes
        for k in [10u64, 20, 30] {
            assert!(algo.insert(&ctx, k));
        }
        ctx.begin_op(SiteId(0));
        pool.crash_ctl().arm_after(crash_at);
        let pre = pmem::run_crashable(|| algo.insert_started(&ctx, 15));
        match pre {
            Some(r) => {
                assert!(r, "{kind:?}: fresh insert must succeed");
                return; // sweep covered every crash point
            }
            None => {
                pool.crash(&mut *adversary(crash_at));
                algo.recover_structure();
                let r = algo.recover_insert(&ctx, 15);
                assert!(
                    r,
                    "{kind:?} crash_at={crash_at}: recovered insert must report success"
                );
                assert!(
                    algo.find(&ctx, 15),
                    "{kind:?} crash_at={crash_at}: key must be present"
                );
                assert_eq!(
                    algo.len(),
                    4,
                    "{kind:?} crash_at={crash_at}: structure corrupted"
                );
            }
        }
    }
    panic!("{kind:?}: insert sweep did not terminate within 6000 events");
}

fn sweep_delete(kind: AlgoKind, adversary: &mut dyn FnMut(u64) -> Box<dyn CrashAdversary>) {
    for crash_at in 0..6000 {
        let (pool, algo) = mk(kind, POOL, 4, 64);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        for k in [10u64, 20, 30] {
            assert!(algo.insert(&ctx, k));
        }
        ctx.begin_op(SiteId(0));
        pool.crash_ctl().arm_after(crash_at);
        let pre = pmem::run_crashable(|| algo.delete_started(&ctx, 20));
        match pre {
            Some(r) => {
                assert!(r);
                return;
            }
            None => {
                pool.crash(&mut *adversary(crash_at));
                algo.recover_structure();
                let r = algo.recover_delete(&ctx, 20);
                assert!(
                    r,
                    "{kind:?} crash_at={crash_at}: recovered delete must report success"
                );
                assert!(
                    !algo.find(&ctx, 20),
                    "{kind:?} crash_at={crash_at}: key must be gone"
                );
                assert_eq!(
                    algo.len(),
                    2,
                    "{kind:?} crash_at={crash_at}: structure corrupted"
                );
            }
        }
    }
    panic!("{kind:?}: delete sweep did not terminate within 6000 events");
}

fn pessimist() -> impl FnMut(u64) -> Box<dyn CrashAdversary> {
    |_| Box::new(PessimistAdversary)
}

fn seeded() -> impl FnMut(u64) -> Box<dyn CrashAdversary> {
    |crash_at| Box::new(SeededAdversary::new(crash_at.wrapping_mul(2654435761) | 1))
}

macro_rules! sweeps {
    ($($name:ident => $kind:expr),+ $(,)?) => {$(
        mod $name {
            use super::*;
            #[test]
            fn insert_pessimist() { sweep_insert($kind, &mut pessimist()); }
            #[test]
            fn insert_seeded() { sweep_insert($kind, &mut seeded()); }
            #[test]
            fn delete_pessimist() { sweep_delete($kind, &mut pessimist()); }
            #[test]
            fn delete_seeded() { sweep_delete($kind, &mut seeded()); }
        }
    )+};
}

sweeps! {
    tracking_list => AlgoKind::Tracking,
    tracking_bst => AlgoKind::TrackingBst,
    capsules_full => AlgoKind::Capsules,
    capsules_opt => AlgoKind::CapsulesOpt,
    romulus => AlgoKind::Romulus,
    redo_opt => AlgoKind::RedoOpt,
}

/// Read-only operations: a crash during a find must recover to a correct
/// answer as well (trivially, by re-execution — but the structure must not
/// have been corrupted by the interrupted read).
#[test]
fn find_crash_sweep_all_algorithms() {
    for kind in ALL_ALGOS {
        for crash_at in 0..400 {
            let (pool, algo) = mk(kind, POOL, 4, 64);
            let ctx = ThreadCtx::new(pool.clone(), 0);
            assert!(algo.insert(&ctx, 7));
            ctx.begin_op(SiteId(0));
            pool.crash_ctl().arm_after(crash_at);
            let pre = pmem::run_crashable(|| algo.find(&ctx, 7));
            match pre {
                Some(r) => {
                    assert!(r, "{kind:?}");
                    break;
                }
                None => {
                    pool.crash(&mut SeededAdversary::new(crash_at | 1));
                    algo.recover_structure();
                    assert!(algo.recover_find(&ctx, 7), "{kind:?} crash_at={crash_at}");
                    assert_eq!(algo.len(), 1, "{kind:?} crash_at={crash_at}");
                }
            }
        }
    }
}

/// Mixed random workload with random crash points: single thread, many
/// operations, each possibly crashing; responses (direct or recovered) must
/// track a sequential reference model exactly.
#[test]
fn randomized_crash_workload_matches_model() {
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 256 << 20, 4, 32);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let mut model = std::collections::BTreeSet::new();
        let mut rng = Rng(0x1234_5678 ^ kind as u64);
        for round in 0..300 {
            let r = rng.next();
            let key = r % 32 + 1;
            let is_insert = r & 1 == 0;
            let crash_after = (r >> 33) % 500;
            ctx.begin_op(SiteId(0));
            pool.crash_ctl().arm_after(crash_after);
            let pre = pmem::run_crashable(|| {
                if is_insert {
                    algo.insert_started(&ctx, key)
                } else {
                    algo.delete_started(&ctx, key)
                }
            });
            pool.crash_ctl().disarm();
            let response = match pre {
                Some(r) => r,
                None => {
                    pool.crash(&mut SeededAdversary::new(r | 1));
                    algo.recover_structure();
                    if is_insert {
                        algo.recover_insert(&ctx, key)
                    } else {
                        algo.recover_delete(&ctx, key)
                    }
                }
            };
            let expected = if is_insert {
                model.insert(key)
            } else {
                model.remove(&key)
            };
            assert_eq!(
                response,
                expected,
                "{kind:?} round {round}: {} {key}",
                if is_insert { "insert" } else { "delete" }
            );
            assert_eq!(algo.len(), model.len(), "{kind:?} round {round}");
        }
    }
}
