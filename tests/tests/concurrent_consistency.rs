//! Concurrency safety without crashes: the per-key balance oracle over
//! heavy multi-thread workloads, plus targeted contention patterns.

use std::sync::{Arc, Barrier};

use bench::AlgoKind;
use integration_tests::{mk, KeyTally, Rng, ALL_ALGOS};
use pmem::ThreadCtx;

const THREADS: usize = 4;

/// Heavy mixed workload: every response is tallied; at quiescence the
/// balance of every key must equal its presence.
#[test]
fn per_key_balance_holds_for_all_algorithms() {
    for kind in ALL_ALGOS {
        let range = 20u64;
        let (pool, algo) = mk(kind, 512 << 20, THREADS, range);
        let tally = Arc::new(KeyTally::new(range));
        let barrier = Arc::new(Barrier::new(THREADS));
        let ops_per_thread = if kind == AlgoKind::Capsules {
            300
        } else {
            1500
        };
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let algo = algo.clone();
            let tally = tally.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool, t);
                let mut rng = Rng((t as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let r = rng.next();
                    let key = r % range + 1;
                    match r % 3 {
                        0 => tally.insert(key, algo.insert(&ctx, key)),
                        1 => tally.delete(key, algo.delete(&ctx, key)),
                        _ => {
                            algo.find(&ctx, key);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ctx = ThreadCtx::new(pool, 0);
        tally.check(&*algo, &ctx, &format!("{kind:?}"));
    }
}

/// All threads fight over a single key: successful inserts and deletes of
/// that key must alternate globally, which the balance oracle enforces.
#[test]
fn single_key_contention_alternates() {
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 256 << 20, THREADS, 4);
        let tally = Arc::new(KeyTally::new(4));
        let barrier = Arc::new(Barrier::new(THREADS));
        let rounds = if kind == AlgoKind::Capsules { 100 } else { 500 };
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let algo = algo.clone();
            let tally = tally.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool, t);
                barrier.wait();
                for i in 0..rounds {
                    if (i + t) % 2 == 0 {
                        tally.insert(1, algo.insert(&ctx, 1));
                    } else {
                        tally.delete(1, algo.delete(&ctx, 1));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ctx = ThreadCtx::new(pool, 0);
        tally.check(&*algo, &ctx, &format!("{kind:?} single-key"));
    }
}

/// Disjoint key partitions: with no cross-thread conflicts every operation
/// must succeed, and the final size is exact.
#[test]
fn disjoint_partitions_never_conflict() {
    for kind in ALL_ALGOS {
        // RedoOpt packs keys into 20 bits and Romulus sizes its region up
        // front, so keep the per-thread stripes modest.
        let per_thread = 40u64;
        let range = THREADS as u64 * per_thread;
        let (pool, algo) = mk(kind, 512 << 20, THREADS, range);
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let algo = algo.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool, t);
                let base = t as u64 * per_thread;
                barrier.wait();
                for k in 1..=per_thread {
                    assert!(
                        algo.insert(&ctx, base + k),
                        "{kind:?}: disjoint insert must win"
                    );
                }
                for k in 1..=per_thread {
                    assert!(algo.find(&ctx, base + k), "{kind:?}");
                }
                for k in (1..=per_thread).step_by(2) {
                    assert!(algo.delete(&ctx, base + k), "{kind:?}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(algo.len(), THREADS * (per_thread as usize / 2), "{kind:?}");
    }
}
