//! Exact linearizability checking of recorded concurrent histories, via
//! the `linearize` crate's Wing–Gong search.
//!
//! Threads time-stamp each invocation and response with a shared logical
//! clock while running real operations on the structures; the checker then
//! searches for a witness linearization. Histories are kept small (the
//! search is exponential in the worst case) but the trials are many and
//! seeded differently.

use std::sync::{Arc, Barrier, Mutex};

use bench::AlgoKind;
use integration_tests::{mk, Rng, ALL_ALGOS};
use linearize::{Clock, History, QueueOp, QueueRet, QueueSpec, SetOp, SetSpec};
use pmem::{PmemPool, PoolCfg, ThreadCtx};

type EventLog<Op, Ret> = Arc<Mutex<Vec<(Op, Ret, u64, u64)>>>;

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 6;
const TRIALS: usize = 12;

/// Runs one concurrent trial against `kind` and returns the history.
fn record_set_history(kind: AlgoKind, seed: u64) -> History<SetSpec> {
    let (pool, algo) = mk(kind, 128 << 20, THREADS, 8);
    let clock = Arc::new(Clock::new());
    let events: EventLog<SetOp, bool> = Arc::new(Mutex::new(Vec::new()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let pool = pool.clone();
        let algo = algo.clone();
        let clock = clock.clone();
        let events = events.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = ThreadCtx::new(pool, t);
            let mut rng = Rng(seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let mut local = Vec::new();
            barrier.wait();
            for _ in 0..OPS_PER_THREAD {
                let r = rng.next();
                let key = r % 4 + 1; // tiny key space maximizes conflicts
                let inv = clock.now();
                let (op, ret) = match r % 3 {
                    0 => (SetOp::Insert(key), algo.insert(&ctx, key)),
                    1 => (SetOp::Delete(key), algo.delete(&ctx, key)),
                    _ => (SetOp::Find(key), algo.find(&ctx, key)),
                };
                let res = clock.now();
                local.push((op, ret, inv, res));
            }
            events.lock().unwrap().extend(local);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut hist = History::new();
    for (op, ret, inv, res) in events.lock().unwrap().iter() {
        hist.record(*op, *ret, *inv, *res);
    }
    hist
}

#[test]
fn concurrent_set_histories_are_linearizable() {
    for kind in ALL_ALGOS {
        for trial in 0..TRIALS {
            let h = record_set_history(kind, 0xACE0 + trial as u64 * 7919);
            assert_eq!(h.len(), THREADS * OPS_PER_THREAD);
            if let Err(e) = h.check(SetSpec::default()) {
                panic!("{kind:?} trial {trial}: {e}");
            }
        }
    }
}

#[test]
fn concurrent_queue_histories_are_linearizable() {
    for trial in 0..TRIALS {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(128 << 20)));
        let q = tracking::RecoverableQueue::new(pool.clone(), 0);
        let clock = Arc::new(Clock::new());
        let events: EventLog<QueueOp, QueueRet> = Arc::new(Mutex::new(Vec::new()));
        let barrier = Arc::new(Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let q = q.clone();
            let clock = clock.clone();
            let events = events.clone();
            let barrier = barrier.clone();
            let trial = trial as u64;
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool, t);
                let mut rng = Rng(trial * 104729 + t as u64 + 1);
                let mut local = Vec::new();
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    let r = rng.next();
                    let inv = clock.now();
                    let (op, ret) = if r.is_multiple_of(2) {
                        let v = (t * 100 + i) as u64; // unique values
                        q.enqueue(&ctx, v);
                        (QueueOp::Enqueue(v), QueueRet::Enqueued)
                    } else {
                        (QueueOp::Dequeue, QueueRet::Dequeued(q.dequeue(&ctx)))
                    };
                    let res = clock.now();
                    local.push((op, ret, inv, res));
                }
                events.lock().unwrap().extend(local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut hist: History<QueueSpec> = History::new();
        for (op, ret, inv, res) in events.lock().unwrap().iter() {
            hist.record(*op, ret.clone(), *inv, *res);
        }
        if let Err(e) = hist.check(QueueSpec::default()) {
            panic!("queue trial {trial}: {e}");
        }
    }
}

/// Histories spanning a crash: operations before the crash, a system-wide
/// crash with recovery, then operations after. The *combined* history
/// (with recovered responses standing in for the interrupted operations)
/// must still be linearizable — this is detectable recovery expressed as a
/// linearizability property.
#[test]
fn set_histories_spanning_crashes_are_linearizable() {
    for kind in ALL_ALGOS {
        for trial in 0..6u64 {
            let (pool, algo) = mk(kind, 128 << 20, 2, 8);
            let clock = Clock::new();
            let mut hist: History<SetSpec> = History::new();
            let ctx = ThreadCtx::new(pool.clone(), 0);
            let mut rng = Rng(trial * 31337 + kind as u64 + 1);
            for _ in 0..10 {
                let r = rng.next();
                let key = r % 4 + 1;
                let is_insert = r & 1 == 0;
                let inv = clock.now();
                ctx.begin_op(pmem::SiteId(0));
                pool.crash_ctl().arm_after((r >> 33) % 250);
                let pre = pmem::run_crashable(|| {
                    if is_insert {
                        algo.insert_started(&ctx, key)
                    } else {
                        algo.delete_started(&ctx, key)
                    }
                });
                pool.crash_ctl().disarm();
                let ret = match pre {
                    Some(v) => v,
                    None => {
                        pool.crash(&mut pmem::SeededAdversary::new(r | 1));
                        algo.recover_structure();
                        if is_insert {
                            algo.recover_insert(&ctx, key)
                        } else {
                            algo.recover_delete(&ctx, key)
                        }
                    }
                };
                let res = clock.now();
                hist.record(
                    if is_insert {
                        SetOp::Insert(key)
                    } else {
                        SetOp::Delete(key)
                    },
                    ret,
                    inv,
                    res,
                );
            }
            if let Err(e) = hist.check(SetSpec::default()) {
                panic!("{kind:?} trial {trial}: {e}");
            }
        }
    }
}
