//! Durable linearizability of *completed* operations: "the effects of all
//! operations that have completed before a crash are reflected in the
//! object's state upon recovery" (the paper's Section 2, citing
//! Izraelevitz et al.). Detectability covers interrupted operations;
//! these tests cover the complementary guarantee for operations that
//! returned — under the maximal-loss adversary, so nothing an algorithm
//! forgot to flush can hide behind a lucky eviction.

use bench::AlgoKind;
use integration_tests::{mk, Rng, ALL_ALGOS};
use pmem::{PessimistAdversary, ThreadCtx};

/// Every completed update survives a maximal-loss crash struck immediately
/// after it returns.
#[test]
fn completed_updates_survive_maximal_loss() {
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 256 << 20, 2, 32);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let mut model = std::collections::BTreeSet::new();
        let mut rng = Rng(0xD00D ^ kind as u64);
        for round in 0..120 {
            let r = rng.next();
            let key = r % 32 + 1;
            let expected;
            if r & 1 == 0 {
                expected = model.insert(key);
                assert_eq!(algo.insert(&ctx, key), expected, "{kind:?} round {round}");
            } else {
                expected = model.remove(&key);
                assert_eq!(algo.delete(&ctx, key), expected, "{kind:?} round {round}");
            }
            // the operation returned: its effect must now be durable
            pool.crash(&mut PessimistAdversary);
            algo.recover_structure();
            assert_eq!(
                algo.len(),
                model.len(),
                "{kind:?} round {round}: completed op's effect lost by the crash"
            );
            assert_eq!(
                algo.find(&ctx, key),
                model.contains(&key),
                "{kind:?} round {round}: key {key} state lost"
            );
        }
    }
}

/// A completed find's answer must remain justified after a crash: if a
/// find returned true, the key is still present post-crash (the paper's
/// Capsules-Opt discussion — a find must not answer from unpersisted
/// state).
#[test]
fn completed_finds_remain_justified_after_crash() {
    for kind in ALL_ALGOS {
        let (pool, algo) = mk(kind, 128 << 20, 2, 16);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        let mut rng = Rng(0xF17D ^ kind as u64);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..60 {
            let r = rng.next();
            let key = r % 16 + 1;
            match r % 3 {
                0 => {
                    model.insert(key);
                    algo.insert(&ctx, key);
                }
                1 => {
                    model.remove(&key);
                    algo.delete(&ctx, key);
                }
                _ => {
                    let found = algo.find(&ctx, key);
                    assert_eq!(found, model.contains(&key), "{kind:?}");
                    pool.crash(&mut PessimistAdversary);
                    algo.recover_structure();
                    assert_eq!(
                        algo.find(&ctx, key),
                        found,
                        "{kind:?}: a returned find's answer was undone by the crash"
                    );
                }
            }
        }
    }
}

/// The same guarantee under concurrency: ops completed by other threads
/// before the crash stay visible afterwards.
#[test]
fn concurrently_completed_updates_survive() {
    for kind in [
        AlgoKind::Tracking,
        AlgoKind::TrackingBst,
        AlgoKind::CapsulesOpt,
    ] {
        let (pool, algo) = mk(kind, 256 << 20, 4, 64);
        // 4 threads insert disjoint stripes and join (all ops completed)
        let mut handles = Vec::new();
        for t in 0..4usize {
            let pool = pool.clone();
            let algo = algo.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool, t);
                for k in 1..=12u64 {
                    assert!(algo.insert(&ctx, t as u64 * 12 + k));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.crash(&mut PessimistAdversary);
        algo.recover_structure();
        let ctx = ThreadCtx::new(pool, 0);
        for t in 0..4u64 {
            for k in 1..=12u64 {
                assert!(
                    algo.find(&ctx, t * 12 + k),
                    "{kind:?}: completed insert of {} lost",
                    t * 12 + k
                );
            }
        }
        assert_eq!(algo.len(), 48, "{kind:?}");
    }
}
