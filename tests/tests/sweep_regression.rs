//! Regression pins for the crash-sweep verification engine
//! (`bench::sweep`).
//!
//! The sweep's coverage guarantee rests on one invariant: the instrumented
//! event count `N` of the scripted workload is an exact, stable function of
//! the configuration, because every crash point `k ∈ [0, N)` is enumerated
//! from it. These tests pin `N` for fixed seeds so that any change to the
//! persistence-instruction placement of the algorithms — an extra `pwb`, a
//! dropped `psync`, a reordered store — shows up as a failed pin rather
//! than as silently shifted crash points. When a pin moves *intentionally*
//! (the placement really changed), update the constant and say so in the
//! commit message.

use bench::sweep::{run_sweep, AdversaryKind, SweepCfg};
use bench::{AlgoKind, StructureKind};

/// Fixed seed for the pinned workloads (any change to it invalidates pins).
const PIN_SEED: u64 = 0xDECA_FBAD;

fn pinned_cfg(structure: StructureKind, algo: AlgoKind) -> SweepCfg {
    let mut cfg = SweepCfg::new(structure, algo);
    cfg.seed = PIN_SEED;
    cfg.script_len = 6;
    cfg.pool_bytes = 16 << 20;
    cfg
}

/// The Tracking list pin: 6 scripted ops produce exactly this many
/// instrumented events (each one a distinct crash point).
#[test]
fn tracking_list_event_count_is_pinned() {
    let mut cfg = pinned_cfg(StructureKind::List, AlgoKind::Tracking);
    // Counting alone needs no replays; skip them so the pin stays cheap.
    cfg.sample = 0.0;
    let report = run_sweep(&cfg);
    assert_eq!(
        report.total_events, 319,
        "Tracking list persistence-event count changed: the paper's \
         persistence-instruction placement moved (or the script generator \
         changed). If intentional, update this pin."
    );
    assert_eq!(report.points_skipped, report.total_events);
}

/// The Tracking queue pin, plus a sampled end-to-end run: the sampled
/// points must all recover detectably and durably.
#[test]
fn tracking_queue_pin_and_sampled_sweep_is_clean() {
    let mut cfg = pinned_cfg(StructureKind::Queue, AlgoKind::Tracking);
    cfg.sample = 0.2;
    let report = run_sweep(&cfg);
    assert_eq!(report.total_events, 300, "Tracking queue event count moved");
    assert!(report.points_run > 0, "0.2 sample selected nothing");
    assert!(
        report.ok(),
        "sampled queue sweep found violations: {:?}",
        report.violations
    );
}

/// The Tracking hashmap pin, plus a sampled end-to-end run. The pinned
/// script is put-heavy over a 2-bucket / max-chain-2 table, so the counted
/// event space includes at least one full resize (level publish, bucket
/// migration, seal and finish) — a moved pin means the resize protocol's
/// persistence-instruction placement changed, not just the bucket ops'.
#[test]
fn tracking_hashmap_pin_and_sampled_sweep_is_clean() {
    let mut cfg = pinned_cfg(StructureKind::Hashmap, AlgoKind::Tracking);
    // The short 6-op script shared by the other pins never trips the
    // aggressive config's resize threshold; 24 ops do (guarded by
    // `pinned_hashmap_script_reaches_a_resize` in bench).
    cfg.script_len = 24;
    cfg.sample = 0.05;
    let report = run_sweep(&cfg);
    assert_eq!(
        report.total_events, 2078,
        "Tracking hashmap persistence-event count changed: bucket-op or \
         resize instruction placement moved. If intentional, update this pin."
    );
    assert!(report.points_run > 0, "0.1 sample selected nothing");
    assert!(
        report.ok(),
        "sampled hashmap sweep found violations: {:?}",
        report.violations
    );
}

/// Counting is idempotent and replay-independent: two sweeps of the same
/// configuration see the same `N` and the same per-point outcomes.
#[test]
fn sweep_is_deterministic_across_runs() {
    let mut cfg = pinned_cfg(StructureKind::List, AlgoKind::Tracking);
    cfg.sample = 0.05;
    let a = run_sweep(&cfg);
    let b = run_sweep(&cfg);
    assert_eq!(a.total_events, b.total_events);
    assert_eq!(a.points_run, b.points_run);
    assert!(a.ok() && b.ok());
}

/// The seeded adversary must also recover cleanly on a sampled Tracking
/// sweep (partial cache-line survival instead of maximal loss).
#[test]
fn seeded_adversary_sampled_sweep_is_clean() {
    let mut cfg = pinned_cfg(StructureKind::Stack, AlgoKind::Tracking);
    cfg.adversary = AdversaryKind::Seeded;
    cfg.sample = 0.2;
    let report = run_sweep(&cfg);
    assert!(
        report.ok(),
        "seeded stack sweep found violations: {:?}",
        report.violations
    );
}

/// Masked-site pins: disabling a `pwb` site removes exactly its events
/// from the crash-point space, and the resulting total is stable. The
/// masked totals are pinned absolutely (not just as deltas) so that a
/// placement change hiding behind a compensating change elsewhere still
/// trips a pin.
#[test]
fn masked_site_event_totals_are_pinned() {
    let mut cfg = pinned_cfg(StructureKind::List, AlgoKind::Tracking);
    cfg.sample = 0.0; // count only
    let full = run_sweep(&cfg);
    assert_eq!(full.total_events, 319, "unmasked pin moved");

    cfg.site_mask = !(1 << tracking::sites::S_CP.0);
    let masked = run_sweep(&cfg);
    assert_eq!(masked.total_events, 308, "masked S_CP pin moved");

    cfg.site_mask = !(1 << tracking::sites::S_RESULT.0);
    let masked = run_sweep(&cfg);
    assert_eq!(masked.total_events, 316, "masked S_RESULT pin moved");
}

/// Hashes a trace stream's observable content (everything but the seq
/// numbers, which per-thread banking makes allocation-order dependent):
/// kind, site, line, tid and dirty annotation of every retained event, in
/// global order. Two runs with equal hashes executed bit-identical
/// instrumented event streams.
fn stream_hash(snap: &pmem::TraceSnapshot) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for e in &snap.events {
        mix(e.kind.label().len() as u64 ^ (e.kind as u64) << 8);
        mix(e.site as u64);
        mix(e.line as u64);
        mix(e.tid as u64);
        mix(e.dirty as u64);
    }
    mix(snap.dropped);
    h
}

/// Runs the pinned deterministic single-thread scripted workload against a
/// traced Model pool and returns the stream hash. `flushopt` selects the
/// elision layer; `false` must reproduce the PR 8 streams bit-for-bit.
fn pinned_stream(algo: AlgoKind, flushopt: bool) -> u64 {
    use pmem::{PmemPool, PoolCfg, ThreadCtx};
    let pool = std::sync::Arc::new(PmemPool::new(PoolCfg {
        trace: true,
        flushopt,
        ..PoolCfg::model(16 << 20)
    }));
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let set = bench::adapter::build(algo, pool.clone(), 1, 32);
    let mut rng = PIN_SEED;
    for i in 0..24u64 {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = rng >> 33 & 31;
        match i % 4 {
            0 | 1 => {
                set.insert(&ctx, key);
            }
            2 => {
                set.delete(&ctx, key);
            }
            _ => {
                set.find(&ctx, key);
            }
        }
    }
    stream_hash(&pool.trace_snapshot())
}

/// The flushopt-off event streams are bit-identical to PR 8: with the
/// elision layer disabled (the default), every store/pwb/fence takes
/// exactly the code path it took before `pmem::flushopt` existed, pinned
/// here as a content hash over the full trace of a scripted Tracking run
/// and a scripted Capsules (Full-persist) run. If either hash moves, the
/// flushopt-off path is no longer a bystander — that is a regression, not
/// a pin to update lightly.
#[test]
fn flushopt_off_streams_are_bit_identical_to_pr8() {
    assert_eq!(
        pinned_stream(AlgoKind::Tracking, false),
        TRACKING_PR8_STREAM_HASH,
        "Tracking flushopt-off stream diverged from PR 8"
    );
    assert_eq!(
        pinned_stream(AlgoKind::Capsules, false),
        CAPSULES_PR8_STREAM_HASH,
        "Capsules flushopt-off stream diverged from PR 8"
    );
}

const TRACKING_PR8_STREAM_HASH: u64 = 1931165606446196522;
const CAPSULES_PR8_STREAM_HASH: u64 = 16994248641333252118;

/// A masked site is invisible at the substrate level, not just in sweep
/// accounting: its `pwb` neither ticks the crash countdown, nor records a
/// trace event, nor counts in the per-site stats.
#[test]
fn masked_site_is_invisible_at_pool_level() {
    use pmem::{run_crashable, PmemPool, PoolCfg, SiteId};
    let pool = PmemPool::new(PoolCfg {
        trace: true,
        ..PoolCfg::model(1 << 20)
    });
    let a = pool.alloc_lines(1);
    pool.store(a, 1);
    let site = SiteId(7);
    pool.set_site_enabled(site, false);

    let events_before = pool.trace_snapshot().total();
    pool.crash_ctl().arm_after(0); // the very next counted event fires
    pool.pwb(a, site); // masked: must not be that event
    assert!(
        !pool.crash_ctl().raised(),
        "masked pwb ticked the crash countdown"
    );
    assert_eq!(
        pool.trace_snapshot().total(),
        events_before,
        "masked pwb recorded a trace event"
    );
    assert_eq!(pool.stats().pwb_at(site), 0, "masked pwb was counted");

    // The countdown is still pending: the next *unmasked* event fires it
    // (and the crash preempts the fence, so nothing is traced for it).
    assert!(run_crashable(|| pool.psync()).is_none());

    // Re-enabled, the same call is visible again.
    pool.set_site_enabled(site, true);
    pool.pwb(a, site);
    assert_eq!(pool.stats().pwb_at(site), 1);
    assert_eq!(pool.trace_snapshot().total(), events_before + 1); // the pwb
}
