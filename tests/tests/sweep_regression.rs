//! Regression pins for the crash-sweep verification engine
//! (`bench::sweep`).
//!
//! The sweep's coverage guarantee rests on one invariant: the instrumented
//! event count `N` of the scripted workload is an exact, stable function of
//! the configuration, because every crash point `k ∈ [0, N)` is enumerated
//! from it. These tests pin `N` for fixed seeds so that any change to the
//! persistence-instruction placement of the algorithms — an extra `pwb`, a
//! dropped `psync`, a reordered store — shows up as a failed pin rather
//! than as silently shifted crash points. When a pin moves *intentionally*
//! (the placement really changed), update the constant and say so in the
//! commit message.

use bench::sweep::{run_sweep, AdversaryKind, SweepCfg};
use bench::{AlgoKind, StructureKind};

/// Fixed seed for the pinned workloads (any change to it invalidates pins).
const PIN_SEED: u64 = 0xDECA_FBAD;

fn pinned_cfg(structure: StructureKind, algo: AlgoKind) -> SweepCfg {
    let mut cfg = SweepCfg::new(structure, algo);
    cfg.seed = PIN_SEED;
    cfg.script_len = 6;
    cfg.pool_bytes = 16 << 20;
    cfg
}

/// The Tracking list pin: 6 scripted ops produce exactly this many
/// instrumented events (each one a distinct crash point).
#[test]
fn tracking_list_event_count_is_pinned() {
    let mut cfg = pinned_cfg(StructureKind::List, AlgoKind::Tracking);
    // Counting alone needs no replays; skip them so the pin stays cheap.
    cfg.sample = 0.0;
    let report = run_sweep(&cfg);
    assert_eq!(
        report.total_events, 316,
        "Tracking list persistence-event count changed: the paper's \
         persistence-instruction placement moved (or the script generator \
         changed). If intentional, update this pin."
    );
    assert_eq!(report.points_skipped, report.total_events);
}

/// The Tracking queue pin, plus a sampled end-to-end run: the sampled
/// points must all recover detectably and durably.
#[test]
fn tracking_queue_pin_and_sampled_sweep_is_clean() {
    let mut cfg = pinned_cfg(StructureKind::Queue, AlgoKind::Tracking);
    cfg.sample = 0.2;
    let report = run_sweep(&cfg);
    assert_eq!(report.total_events, 296, "Tracking queue event count moved");
    assert!(report.points_run > 0, "0.2 sample selected nothing");
    assert!(
        report.ok(),
        "sampled queue sweep found violations: {:?}",
        report.violations
    );
}

/// Counting is idempotent and replay-independent: two sweeps of the same
/// configuration see the same `N` and the same per-point outcomes.
#[test]
fn sweep_is_deterministic_across_runs() {
    let mut cfg = pinned_cfg(StructureKind::List, AlgoKind::Tracking);
    cfg.sample = 0.05;
    let a = run_sweep(&cfg);
    let b = run_sweep(&cfg);
    assert_eq!(a.total_events, b.total_events);
    assert_eq!(a.points_run, b.points_run);
    assert!(a.ok() && b.ok());
}

/// The seeded adversary must also recover cleanly on a sampled Tracking
/// sweep (partial cache-line survival instead of maximal loss).
#[test]
fn seeded_adversary_sampled_sweep_is_clean() {
    let mut cfg = pinned_cfg(StructureKind::Stack, AlgoKind::Tracking);
    cfg.adversary = AdversaryKind::Seeded;
    cfg.sample = 0.2;
    let report = run_sweep(&cfg);
    assert!(
        report.ok(),
        "seeded stack sweep found violations: {:?}",
        report.violations
    );
}
