//! Checkpoint-engine equivalence, per structure family.
//!
//! The checkpointed sweep engine (`bench::sweep` with `cfg.checkpoint`)
//! replays each crash point from a pool snapshot instead of rebuilding the
//! structure from scratch, and its restore path is *incremental*: only the
//! cache lines the previous replay touched are rewritten, and crash
//! resolution scans only that footprint. These tests assert the strongest
//! available equivalence for every structure family: with `paranoia = 1.0`
//! every single replayed point is re-run from scratch, traced, and the two
//! engines must agree on the verdict *and* produce byte-identical
//! pre-crash event streams. Any divergence — a stale line the incremental
//! restore missed, an adversary RNG stream shifted by the bounded crash
//! scan — lands in `violations` and fails the run.

use bench::sweep::{run_palloc_sweep, run_sweep, AdversaryKind, SweepCfg};
use bench::{AlgoKind, StructureKind};

fn assert_engines_equivalent(structure: StructureKind, algo: AlgoKind, adversary: AdversaryKind) {
    assert_engines_equivalent_cfg(structure, algo, adversary, false, false)
}

fn assert_engines_equivalent_reclaim(
    structure: StructureKind,
    algo: AlgoKind,
    adversary: AdversaryKind,
    reclaim: bool,
) {
    assert_engines_equivalent_cfg(structure, algo, adversary, reclaim, false)
}

fn assert_engines_equivalent_cfg(
    structure: StructureKind,
    algo: AlgoKind,
    adversary: AdversaryKind,
    reclaim: bool,
    flushopt: bool,
) {
    let mut cfg = SweepCfg::new(structure, algo);
    cfg.script_len = 5;
    cfg.pool_bytes = 4 << 20;
    cfg.adversary = adversary;
    cfg.checkpoint = true;
    cfg.paranoia = 1.0;
    cfg.reclaim = reclaim;
    cfg.flushopt = flushopt;
    let ck = run_sweep(&cfg);
    assert!(
        ck.ok(),
        "{}/{}: checkpointed sweep diverged or failed: {:?}",
        structure.name(),
        algo.name(),
        ck.violations
    );
    assert_eq!(
        ck.paranoia_checked, ck.points_run,
        "paranoia 1.0 must cross-check every replayed point"
    );

    // The from-scratch engine over the same space agrees on its shape.
    let scratch = run_sweep(&SweepCfg {
        checkpoint: false,
        paranoia: 0.0,
        ..cfg
    });
    assert!(scratch.ok());
    assert_eq!(ck.total_events, scratch.total_events);
    assert_eq!(ck.points_run, scratch.points_run);
}

/// List family, seeded adversary: partial-line survival exercises the
/// bounded crash scan's "clean lines consume no adversary choice"
/// invariant — a scan-order difference between the engines would shift
/// the RNG stream and change crash resolutions.
#[test]
fn list_checkpoint_engine_is_equivalent() {
    assert_engines_equivalent(
        StructureKind::List,
        AlgoKind::Tracking,
        AdversaryKind::Seeded,
    );
}

/// Queue family, pessimist adversary (maximal loss of unflushed lines).
#[test]
fn queue_checkpoint_engine_is_equivalent() {
    assert_engines_equivalent(
        StructureKind::Queue,
        AlgoKind::Tracking,
        AdversaryKind::Pessimist,
    );
}

/// Exchanger family: the deepest per-op event streams (two-sided
/// handshake), and the family whose checkpoints are sparsest.
#[test]
fn exchanger_checkpoint_engine_is_equivalent() {
    assert_engines_equivalent(
        StructureKind::Exchanger,
        AlgoKind::Tracking,
        AdversaryKind::Pessimist,
    );
}

/// Hashmap family, pessimist adversary: the sweep config (2 buckets,
/// max-chain 2) drives the scripted puts through bucket migrations, so the
/// incremental restore must reproduce level headers, migration cursors and
/// move descriptors exactly — a stale `H_NEXT` or cursor line would send
/// the replayed recovery down a different (still-migrating vs finished)
/// path than the scratch engine's.
#[test]
fn hashmap_checkpoint_engine_is_equivalent() {
    assert_engines_equivalent(
        StructureKind::Hashmap,
        AlgoKind::Tracking,
        AdversaryKind::Pessimist,
    );
}

/// Hashmap on a reclaim pool: migrated-out originals and sealed sentinels
/// retire into limbo, so the per-thread allocator metadata joins the
/// checkpointed footprint.
#[test]
fn churn_hashmap_checkpoint_engine_is_equivalent() {
    assert_engines_equivalent_reclaim(
        StructureKind::Hashmap,
        AlgoKind::Tracking,
        AdversaryKind::Seeded,
        true,
    );
}

/// Hashmap with the flush-elision layer armed (the bucket traversal is a
/// coalescible region, so the elided event space differs most here).
#[test]
fn hashmap_checkpoint_engine_is_equivalent_with_flushopt() {
    assert_engines_equivalent_cfg(
        StructureKind::Hashmap,
        AlgoKind::Tracking,
        AdversaryKind::Pessimist,
        false,
        true,
    );
}

/// Allocator-churn list on a reclaim pool: deletes retire nodes into
/// limbo, op boundaries drain it, and every verdict audits the free
/// lists — so the allocator's instrumented events join the sweep's event
/// space and the incremental restore must reproduce the per-thread
/// allocator metadata lines exactly. A stale free-list head or a drain
/// replayed against an un-restored limbo line would diverge the engines.
#[test]
fn churn_list_checkpoint_engine_is_equivalent() {
    assert_engines_equivalent_reclaim(
        StructureKind::List,
        AlgoKind::Tracking,
        AdversaryKind::Seeded,
        true,
    );
}

/// With the flush-elision layer armed, the checkpointed engine must still
/// match the from-scratch engine point for point: a checkpoint restore now
/// additionally re-imports the layer's per-line flush-state table and
/// combining buffer, and a stale entry in either (claiming a line clean
/// that the volatile image re-dirtied, or dropping a deferred flush) would
/// diverge the event streams or the verdicts under `paranoia = 1.0`.
/// One test per structure family the classic matrix covers.
#[test]
fn list_checkpoint_engine_is_equivalent_with_flushopt() {
    assert_engines_equivalent_cfg(
        StructureKind::List,
        AlgoKind::Tracking,
        AdversaryKind::Seeded,
        false,
        true,
    );
}

/// Capsules' Full-persist list is the heaviest elision user (the traverse
/// region): the strongest exercise of drained-at-fence flushes inside the
/// incremental restore path.
#[test]
fn capsules_checkpoint_engine_is_equivalent_with_flushopt() {
    assert_engines_equivalent_cfg(
        StructureKind::List,
        AlgoKind::Capsules,
        AdversaryKind::Pessimist,
        false,
        true,
    );
}

/// Queue family with the layer on, pessimist adversary.
#[test]
fn queue_checkpoint_engine_is_equivalent_with_flushopt() {
    assert_engines_equivalent_cfg(
        StructureKind::Queue,
        AlgoKind::Tracking,
        AdversaryKind::Pessimist,
        false,
        true,
    );
}

/// Exchanger family with the layer on (sparsest checkpoints, deepest
/// per-op streams).
#[test]
fn exchanger_checkpoint_engine_is_equivalent_with_flushopt() {
    assert_engines_equivalent_cfg(
        StructureKind::Exchanger,
        AlgoKind::Tracking,
        AdversaryKind::Pessimist,
        false,
        true,
    );
}

/// The allocator's own crash-sweep subject (alloc/retire/drain script over
/// a persistent owned list), checkpoint vs scratch with every point
/// cross-checked.
#[test]
fn palloc_checkpoint_engine_is_equivalent() {
    let mut cfg = SweepCfg::new(StructureKind::List, AlgoKind::Tracking);
    cfg.script_len = 6;
    cfg.pool_bytes = 4 << 20;
    cfg.adversary = AdversaryKind::Seeded;
    cfg.checkpoint = true;
    cfg.paranoia = 1.0;
    let ck = run_palloc_sweep(&cfg);
    assert!(
        ck.ok(),
        "palloc: checkpointed sweep diverged or failed: {:?}",
        ck.violations
    );
    assert_eq!(ck.paranoia_checked, ck.points_run);

    let scratch = run_palloc_sweep(&SweepCfg {
        checkpoint: false,
        paranoia: 0.0,
        ..cfg
    });
    assert!(scratch.ok());
    assert_eq!(ck.total_events, scratch.total_events);
    assert_eq!(ck.points_run, scratch.points_run);
}
