//! End-to-end checks of the deterministic concurrent-schedule explorer
//! (`bench::explore`) across the structure × algorithm × strategy matrix.
//!
//! The explorer's claims, verified here from the outside:
//!
//! 1. every schedulable pair linearizes under every strategy (the
//!    zero-violation matrix committed under `results/explore/` is
//!    reproducible),
//! 2. schedules are deterministic — the same configuration replays the
//!    identical event counts and verdicts, which is what makes a crash
//!    point `(schedule, k)` addressable at all,
//! 3. injected crashes actually interrupt concurrent operations (the
//!    crashed-thread counts prove multiple threads were in flight), and
//!    recovery still produces a linearizable history,
//! 4. sharding partitions the schedule grid without changing any verdict.

use bench::explore::{run_explore, CrashMode, ExploreCfg};
use bench::sweep::AdversaryKind;
use bench::{AlgoKind, StructureKind};

fn quick_cfg(structure: StructureKind, algo: AlgoKind) -> ExploreCfg {
    let mut cfg = ExploreCfg::new(structure, algo);
    cfg.pool_bytes = 8 << 20;
    cfg.schedules = 2;
    cfg.crash = CrashMode::Sampled { per_schedule: 2 };
    cfg
}

/// The full schedulable matrix at 2 threads: every structure family, every
/// schedulable implementation, all three strategies, with crash injection.
#[test]
fn full_matrix_linearizes_with_crash_injection() {
    for structure in StructureKind::all() {
        for algo in structure.explore_lineup() {
            let report = run_explore(&quick_cfg(structure, algo));
            assert!(
                report.ok(),
                "{}/{} violations: {:?}",
                structure.name(),
                algo.name(),
                report.violations
            );
            assert_eq!(report.runs, 6, "3 strategies x 2 schedules");
            assert!(
                report.crash_runs > 0,
                "{}/{} injected no crashes",
                structure.name(),
                algo.name()
            );
        }
    }
}

/// Romulus used to be the one non-schedulable competitor (blocking writer
/// mutex + volatile seqlock reader spin); the spin-yield channel
/// (`pmem::yield_spin` inside both wait loops) made it schedulable, so
/// the full list lineup now participates in exploration.
#[test]
fn romulus_is_schedulable_via_the_spin_channel() {
    assert!(AlgoKind::Romulus.schedulable());
    assert!(StructureKind::List
        .explore_lineup()
        .contains(&AlgoKind::Romulus));
    // The whole paper lineup is schedulable.
    assert_eq!(
        StructureKind::List.explore_lineup(),
        StructureKind::List.lineup()
    );
}

/// Determinism: identical configurations replay identical schedules —
/// same per-run event counts, same verdicts, byte-identical CSV.
#[test]
fn schedules_replay_deterministically() {
    let cfg = quick_cfg(StructureKind::List, AlgoKind::Tracking);
    let a = run_explore(&cfg);
    let b = run_explore(&cfg);
    assert!(a.ok() && b.ok());
    assert_eq!(a.total_events, b.total_events);
    assert_eq!(a.csv.to_text(), b.csv.to_text());

    // A different seed explores different interleavings (event totals may
    // coincide per-strategy, but the whole CSV matching would mean the
    // seed is dead).
    let reseeded = ExploreCfg {
        seed: cfg.seed ^ 0xFFFF,
        ..cfg
    };
    let c = run_explore(&reseeded);
    assert!(c.ok());
    assert_ne!(a.csv.to_text(), c.csv.to_text());
}

/// Crash injection interrupts genuinely concurrent executions: with two
/// threads mid-script, a broadcast crash must regularly catch both with an
/// operation in flight, and recovery must linearize under both adversaries.
#[test]
fn injected_crashes_interrupt_concurrent_operations() {
    for adversary in [AdversaryKind::Pessimist, AdversaryKind::Seeded] {
        let mut cfg = quick_cfg(StructureKind::Queue, AlgoKind::Tracking);
        cfg.adversary = adversary;
        cfg.crash = CrashMode::Sampled { per_schedule: 4 };
        let report = run_explore(&cfg);
        assert!(
            report.ok(),
            "{:?} violations: {:?}",
            adversary,
            report.violations
        );
        assert!(report.crash_runs >= 6);
    }
}

/// Three-thread schedules exercise the checker's frontier pruning with a
/// genuinely concurrent 3-way history on the contended set.
#[test]
fn three_thread_set_schedules_linearize() {
    let mut cfg = quick_cfg(StructureKind::List, AlgoKind::Capsules);
    cfg.threads = 3;
    cfg.ops_per_thread = 3;
    let report = run_explore(&cfg);
    assert!(report.ok(), "violations: {:?}", report.violations);
}

/// Resize-vs-insert: two threads over the aggressive sweep table (2
/// buckets, max-chain 2), long enough scripts that thread 0's all-put
/// stream triggers a resize while thread 1 keeps inserting and removing
/// (guarded by `explore_map_scripts_reach_a_resize` in bench). Crash
/// injection lands points inside the migration. The full CSV is pinned as
/// a golden file: any change to the hashmap's event placement, the
/// scheduler, or the crash-point sampling shows up as a diff here — if
/// intentional, regenerate the golden and say so in the commit message.
#[test]
fn hashmap_resize_vs_insert_schedule_matches_golden() {
    let mut cfg = quick_cfg(StructureKind::Hashmap, AlgoKind::Tracking);
    cfg.ops_per_thread = 12;
    let report = run_explore(&cfg);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.crash_runs > 0, "no crash-injected runs");
    assert_eq!(
        report.csv.to_text(),
        include_str!("../golden/explore_hashmap_resize_t2.csv"),
        "resize-vs-insert schedule CSV diverged from the committed golden"
    );
}

/// The same resize-vs-insert mix at three threads (two inserters against
/// the resize-triggering putter) still linearizes under crash injection.
#[test]
fn hashmap_three_thread_resize_schedules_linearize() {
    let mut cfg = quick_cfg(StructureKind::Hashmap, AlgoKind::Tracking);
    cfg.threads = 3;
    cfg.ops_per_thread = 8;
    let report = run_explore(&cfg);
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.crash_runs > 0);
}

/// Sharding covers the grid exactly once and never changes a verdict.
#[test]
fn shards_partition_the_grid_without_changing_verdicts() {
    let mut cfg = quick_cfg(StructureKind::Exchanger, AlgoKind::Tracking);
    cfg.crash = CrashMode::Off;
    let full = run_explore(&cfg);
    assert!(full.ok());
    let mut sharded_runs = 0;
    cfg.shard_count = 2;
    for i in 0..2 {
        cfg.shard_index = i;
        let part = run_explore(&cfg);
        assert!(part.ok(), "shard {i} violations: {:?}", part.violations);
        sharded_runs += part.runs;
    }
    assert_eq!(sharded_runs, full.runs);
}
