//! Crash storms and sweeps for the queue and stack (the two structures the
//! generic engine derives beyond the paper's three), with an
//! exactly-once transfer oracle: after any number of crashes and
//! recoveries, {consumed values} ∪ {values still inside} must equal
//! {produced values}, with no duplicates.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use integration_tests::Rng;
use pmem::{PmemPool, PoolCfg, SeededAdversary, SiteId, ThreadCtx};
use tracking::{RecoverableQueue, RecoverableStack};

const THREADS: usize = 4;
const ROUNDS: usize = 6;

#[derive(Copy, Clone)]
enum Pending {
    None,
    Enq(u64),
    Deq,
}

fn queue_storm() {
    let pool = Arc::new(PmemPool::new(PoolCfg::model(512 << 20)));
    let q = RecoverableQueue::new(pool.clone(), 0);
    let produced: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    for round in 0..ROUNDS {
        let barrier = Arc::new(Barrier::new(THREADS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let q = q.clone();
            let produced = produced.clone();
            let consumed = consumed.clone();
            let barrier = barrier.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool.clone(), t);
                let mut rng = Rng(((round * THREADS + t) as u64 + 1) * 0x9E37_79B9);
                let mut counter = 0u64;
                barrier.wait();
                loop {
                    if stop.load(Ordering::Relaxed) && !pool.crash_ctl().raised() {
                        return (ctx, Pending::None);
                    }
                    let r = rng.next();
                    if pmem::run_crashable(|| ctx.begin_op(SiteId(0))).is_none() {
                        return (ctx, Pending::None);
                    }
                    if r & 1 == 0 {
                        counter += 1;
                        let v = (round as u64) << 32 | (t as u64) << 24 | counter;
                        produced.lock().unwrap().insert(v);
                        // The value is committed to the oracle before the
                        // attempt: a crashed enqueue must be recovered and
                        // land exactly once.
                        match pmem::run_crashable(|| q.enqueue_started(&ctx, v)) {
                            Some(()) => {}
                            None => return (ctx, Pending::Enq(v)),
                        }
                    } else {
                        match pmem::run_crashable(|| q.dequeue_started(&ctx)) {
                            Some(Some(v)) => consumed.lock().unwrap().push(v),
                            Some(None) => {}
                            None => return (ctx, Pending::Deq),
                        }
                    }
                }
            }));
        }
        barrier.wait();
        std::thread::sleep(std::time::Duration::from_millis(25));
        pool.crash_ctl().raise();
        stop.store(true, Ordering::Relaxed);
        let outcomes: Vec<(ThreadCtx, Pending)> = handles
            .into_iter()
            .map(|h| h.join().expect("worker died"))
            .collect();
        pool.crash(&mut SeededAdversary::new(((round as u64 + 1) * 7919) | 1));
        for (ctx, pending) in &outcomes {
            match *pending {
                Pending::None => {}
                Pending::Enq(v) => q.recover_enqueue(ctx, v),
                Pending::Deq => {
                    if let Some(v) = q.recover_dequeue(ctx) {
                        consumed.lock().unwrap().push(v);
                    }
                }
            }
        }
        // exactly-once oracle at quiescence
        let inside: Vec<u64> = q.values();
        let consumed_now = consumed.lock().unwrap().clone();
        let produced_now = produced.lock().unwrap().clone();
        let mut seen: HashSet<u64> = HashSet::new();
        for v in consumed_now.iter().chain(inside.iter()) {
            assert!(seen.insert(*v), "round {round}: value {v:#x} duplicated");
        }
        assert_eq!(
            seen, produced_now,
            "round {round}: consumed+inside must equal produced exactly"
        );
    }
}

#[test]
fn queue_survives_crash_storms_exactly_once() {
    queue_storm();
}

#[test]
fn stack_survives_crash_storms_exactly_once() {
    let pool = Arc::new(PmemPool::new(PoolCfg::model(512 << 20)));
    let s = RecoverableStack::new(pool.clone(), 0);
    let produced: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let consumed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    for round in 0..ROUNDS {
        let barrier = Arc::new(Barrier::new(THREADS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = pool.clone();
            let s = s.clone();
            let produced = produced.clone();
            let consumed = consumed.clone();
            let barrier = barrier.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = ThreadCtx::new(pool.clone(), t);
                let mut rng = Rng(((round * THREADS + t) as u64 + 1) * 0xABCD_1234);
                let mut counter = 0u64;
                barrier.wait();
                loop {
                    if stop.load(Ordering::Relaxed) && !pool.crash_ctl().raised() {
                        return (ctx, Pending::None);
                    }
                    let r = rng.next();
                    if pmem::run_crashable(|| ctx.begin_op(SiteId(0))).is_none() {
                        return (ctx, Pending::None);
                    }
                    if r & 1 == 0 {
                        counter += 1;
                        let v = (round as u64) << 32 | (t as u64) << 24 | counter;
                        produced.lock().unwrap().insert(v);
                        match pmem::run_crashable(|| s.push_started(&ctx, v)) {
                            Some(()) => {}
                            None => return (ctx, Pending::Enq(v)),
                        }
                    } else {
                        match pmem::run_crashable(|| s.pop_started(&ctx)) {
                            Some(Some(v)) => consumed.lock().unwrap().push(v),
                            Some(None) => {}
                            None => return (ctx, Pending::Deq),
                        }
                    }
                }
            }));
        }
        barrier.wait();
        std::thread::sleep(std::time::Duration::from_millis(25));
        pool.crash_ctl().raise();
        stop.store(true, Ordering::Relaxed);
        let outcomes: Vec<(ThreadCtx, Pending)> = handles
            .into_iter()
            .map(|h| h.join().expect("worker died"))
            .collect();
        pool.crash_ctl().disarm();
        pool.crash(&mut SeededAdversary::new(((round as u64 + 1) * 104729) | 1));
        for (ctx, pending) in &outcomes {
            match *pending {
                Pending::None => {}
                Pending::Enq(v) => s.recover_push(ctx, v),
                Pending::Deq => {
                    if let Some(v) = s.recover_pop(ctx) {
                        consumed.lock().unwrap().push(v);
                    }
                }
            }
        }
        let inside: Vec<u64> = s.values();
        let consumed_now = consumed.lock().unwrap().clone();
        let produced_now = produced.lock().unwrap().clone();
        let mut seen: HashSet<u64> = HashSet::new();
        for v in consumed_now.iter().chain(inside.iter()) {
            assert!(seen.insert(*v), "round {round}: value {v:#x} duplicated");
        }
        assert_eq!(
            seen, produced_now,
            "round {round}: consumed+inside != produced"
        );
    }
}

/// FIFO order across a crash: values enqueued before a crash come out in
/// order after recovery.
#[test]
fn queue_order_survives_crashes() {
    for crash_at in [5u64, 25, 60, 120, 250] {
        let pool = Arc::new(PmemPool::new(PoolCfg::model(64 << 20)));
        let q = RecoverableQueue::new(pool.clone(), 0);
        let ctx = ThreadCtx::new(pool.clone(), 0);
        for v in 1..=5u64 {
            q.enqueue(&ctx, v);
        }
        ctx.begin_op(SiteId(0));
        pool.crash_ctl().arm_after(crash_at);
        let pre = pmem::run_crashable(|| q.enqueue_started(&ctx, 6));
        pool.crash_ctl().disarm();
        if pre.is_none() {
            pool.crash(&mut SeededAdversary::new(crash_at | 1));
            q.recover_enqueue(&ctx, 6);
        }
        for want in 1..=6u64 {
            assert_eq!(q.dequeue(&ctx), Some(want), "crash_at={crash_at}");
        }
        assert_eq!(q.dequeue(&ctx), None);
    }
}
