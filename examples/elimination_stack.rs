//! An elimination-backoff stack assembled from two of this repository's
//! recoverable structures: the Treiber-style [`tracking::RecoverableStack`]
//! backed by an array of [`tracking::RecoverableExchanger`]s (Herlihy &
//! Shavit's classic composition — and the use-case the paper's exchanger
//! section gestures at).
//!
//! A push and a pop that collide on an exchanger *eliminate* each other
//! without ever touching the stack's top: the pusher hands its value to
//! the popper through the exchanger. Under contention this turns the
//! stack's sequential bottleneck into parallel pairings; every elimination
//! is itself detectably recoverable because the exchanger is.
//!
//! ```text
//! cargo run -p examples --bin elimination_stack
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pmem::{PmemPool, PoolCfg, ThreadCtx};
use tracking::{RecoverableExchanger, RecoverableStack};

const EXCHANGERS: usize = 2;
const ELIM_SPIN: usize = 400;
/// Tag bit distinguishing push values from pop requests in the exchanger.
const POP_REQUEST: u64 = 1 << 40;

struct EliminationStack {
    stack: RecoverableStack,
    elim: Vec<RecoverableExchanger>,
}

impl EliminationStack {
    fn new(pool: Arc<PmemPool>) -> Self {
        let stack = RecoverableStack::new(pool.clone(), 0);
        let elim = (0..EXCHANGERS)
            .map(|i| RecoverableExchanger::new(pool.clone(), 1 + i))
            .collect();
        EliminationStack { stack, elim }
    }

    fn push(&self, ctx: &ThreadCtx, value: u64, eliminated: &AtomicU64) {
        // try elimination first: a colliding popper takes the value
        let slot = ctx.tid() % EXCHANGERS;
        if let Some(partner) = self.elim[slot].exchange(ctx, value, ELIM_SPIN) {
            if partner & POP_REQUEST != 0 {
                eliminated.fetch_add(1, Ordering::Relaxed);
                return; // a popper took our value; neither touches the stack
            }
            // collided with another pusher: no elimination, fall through
        }
        self.stack.push(ctx, value);
    }

    fn pop(&self, ctx: &ThreadCtx, eliminated: &AtomicU64) -> Option<u64> {
        if let Some(v) = self.stack.pop(ctx) {
            return Some(v);
        }
        // empty stack: wait on the elimination layer for a pusher
        let slot = ctx.tid() % EXCHANGERS;
        if let Some(partner) = self.elim[slot].exchange(ctx, POP_REQUEST, ELIM_SPIN) {
            if partner & POP_REQUEST == 0 {
                eliminated.fetch_add(1, Ordering::Relaxed);
                return Some(partner); // eliminated against a pusher
            }
        }
        self.stack.pop(ctx)
    }
}

fn main() {
    let pool = Arc::new(PmemPool::new(PoolCfg::perf(256 << 20)));
    let es = Arc::new(EliminationStack::new(pool.clone()));
    let eliminated = Arc::new(AtomicU64::new(0));

    const PER_THREAD: u64 = 2_000;
    const PUSHERS: usize = 2;
    const POPPERS: usize = 2;

    let mut handles = Vec::new();
    for t in 0..PUSHERS {
        let es = es.clone();
        let pool = pool.clone();
        let eliminated = eliminated.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = ThreadCtx::new(pool, t);
            for i in 0..PER_THREAD {
                es.push(&ctx, (t as u64) << 20 | i, &eliminated);
            }
            Vec::new()
        }));
    }
    for t in 0..POPPERS {
        let es = es.clone();
        let pool = pool.clone();
        let eliminated = eliminated.clone();
        handles.push(std::thread::spawn(move || {
            let ctx = ThreadCtx::new(pool, PUSHERS + t);
            let mut got = Vec::new();
            while got.len() < PER_THREAD as usize {
                if let Some(v) = es.pop(&ctx, &eliminated) {
                    got.push(v);
                }
            }
            got
        }));
    }
    let mut popped: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    // audit: every pushed value popped exactly once, none invented
    assert_eq!(popped.len() as u64, PUSHERS as u64 * PER_THREAD);
    popped.sort_unstable();
    let mut want: Vec<u64> = (0..PUSHERS as u64)
        .flat_map(|t| (0..PER_THREAD).map(move |i| t << 20 | i))
        .collect();
    want.sort_unstable();
    assert_eq!(
        popped, want,
        "elimination must not lose or duplicate values"
    );

    println!(
        "moved {} values through the elimination stack; {} eliminated handoffs \
         (both sides counted — {} pairs never touched the stack top); stack empty: {}",
        popped.len(),
        eliminated.load(Ordering::Relaxed),
        eliminated.load(Ordering::Relaxed) / 2,
        es.stack.is_empty(),
    );
}
