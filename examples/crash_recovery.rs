//! Crash recovery, end to end: crash an operation at a random instrumented
//! step, lose every non-persisted cache line, run the recovery function,
//! and verify detectability — many times in a row.
//!
//! This is the paper's central claim made executable: *"after a crash,
//! every executed operation is able to recover and return a correct
//! response, and the state of the data structure is not corrupted."*
//!
//! ```text
//! cargo run -p examples --bin crash_recovery            # Tracking list
//! cargo run -p examples --bin crash_recovery -- bst     # Tracking BST
//! cargo run -p examples --bin crash_recovery -- capsules
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;

use pmem::{PmemPool, PoolCfg, SeededAdversary, ThreadCtx};

const ROUNDS: usize = 400;
const RANGE: u64 = 40;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "list".into());
    match which.as_str() {
        "list" => run(
            "Tracking list",
            |pool| tracking::RecoverableList::new(pool, 0),
            |l, c, k| l.insert_started(c, k),
            |l, c, k| l.delete_started(c, k),
            |l, c, k| l.recover_insert(c, k),
            |l, c, k| l.recover_delete(c, k),
            |l| l.keys(),
        ),
        "bst" => run(
            "Tracking BST",
            |pool| tracking::RecoverableBst::new(pool, 0),
            |t, c, k| t.insert_started(c, k),
            |t, c, k| t.delete_started(c, k),
            |t, c, k| t.recover_insert(c, k),
            |t, c, k| t.recover_delete(c, k),
            |t| t.keys(),
        ),
        "capsules" => run(
            "Capsules-Opt list",
            |pool| capsules::CapsulesList::new(pool, 0, capsules::PersistPolicy::Opt),
            |l, c, k| l.insert_started(c, k),
            |l, c, k| l.delete_started(c, k),
            |l, c, k| l.recover_insert(c, k),
            |l, c, k| l.recover_delete(c, k),
            |l| l.keys(),
        ),
        other => {
            eprintln!("unknown structure '{other}' (list|bst|capsules)");
            std::process::exit(2);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run<S>(
    name: &str,
    build: impl Fn(Arc<PmemPool>) -> S,
    ins: impl Fn(&S, &ThreadCtx, u64) -> bool,
    del: impl Fn(&S, &ThreadCtx, u64) -> bool,
    rec_ins: impl Fn(&S, &ThreadCtx, u64) -> bool,
    rec_del: impl Fn(&S, &ThreadCtx, u64) -> bool,
    keys: impl Fn(&S) -> Vec<u64>,
) {
    // Model mode: shadow memory tracks what is really durable.
    let pool = Arc::new(PmemPool::new(PoolCfg::model(256 << 20)));
    let s = build(pool.clone());
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let mut model = BTreeSet::new();
    let mut rng = 0xC0FFEEu64;
    let mut crashes = 0usize;
    let mut completions = 0usize;

    for round in 0..ROUNDS {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let key = rng % RANGE + 1;
        let is_insert = rng & 1 == 0;
        let crash_after = (rng >> 33) % 600; // random instrumented step

        // The "system" persists CP_q := 0, then invokes the op with a crash
        // armed at a random point.
        ctx.begin_op(tracking::sites::S_CP);
        pool.crash_ctl().arm_after(crash_after);
        let outcome = pmem::run_crashable(|| {
            if is_insert {
                ins(&s, &ctx, key)
            } else {
                del(&s, &ctx, key)
            }
        });
        pool.crash_ctl().disarm();

        let response = match outcome {
            Some(r) => {
                completions += 1;
                r
            }
            None => {
                // Crash: an adversary decides the fate of every un-synced
                // cache line, then the thread recovers.
                crashes += 1;
                pool.crash(&mut SeededAdversary::new(rng | 1));
                if is_insert {
                    rec_ins(&s, &ctx, key)
                } else {
                    rec_del(&s, &ctx, key)
                }
            }
        };
        // Detectability check against the sequential model.
        let expected = if is_insert {
            model.insert(key)
        } else {
            model.remove(&key)
        };
        assert_eq!(
            response,
            expected,
            "round {round}: {} {key} returned {response}, model says {expected}",
            if is_insert { "insert" } else { "delete" }
        );
        let got = keys(&s);
        let want: Vec<u64> = model.iter().copied().collect();
        assert_eq!(
            got, want,
            "round {round}: structure diverged from model after recovery"
        );
    }
    println!(
        "{name}: {ROUNDS} ops, {crashes} crashed and recovered, {completions} ran to completion — \
         every response matched the sequential model"
    );
}
