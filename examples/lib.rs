//! Shared helpers for the example binaries live in the individual files.
