//! Quickstart: a detectably recoverable sorted set in five minutes.
//!
//! Creates a simulated persistent-memory pool, builds the Tracking linked
//! list on it, runs a few operations from several threads, and shows the
//! persistence-instruction accounting that the paper's evaluation is built
//! on.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use std::sync::Arc;

use pmem::{PmemPool, PoolCfg, ThreadCtx};
use tracking::RecoverableList;

fn main() {
    // A pool is a word-addressable simulated NVMM. Perf mode: pwb = real
    // cache-line flush, psync = store fence.
    let pool = Arc::new(PmemPool::new(PoolCfg::perf(64 << 20)));
    let list = RecoverableList::new(pool.clone(), 0);

    // Every thread carries a ThreadCtx: its identity plus the persistent
    // CP_q / RD_q recovery variables of the paper's system model.
    let ctx = ThreadCtx::new(pool.clone(), 0);

    assert!(list.insert(&ctx, 42));
    assert!(
        !list.insert(&ctx, 42),
        "second insert of 42 reports 'already there'"
    );
    assert!(list.find(&ctx, 42));
    assert!(list.delete(&ctx, 42));
    assert!(!list.find(&ctx, 42));

    // A few threads hammering the same small key range.
    let mut handles = Vec::new();
    for t in 0..4 {
        let list = list.clone();
        let ctx = ThreadCtx::new(pool.clone(), t);
        handles.push(std::thread::spawn(move || {
            let mut rng = (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
            let mut done = 0u64;
            for _ in 0..10_000 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let key = rng % 100 + 1;
                match (rng >> 32) % 3 {
                    0 => drop(list.insert(&ctx, key)),
                    1 => drop(list.delete(&ctx, key)),
                    _ => drop(list.find(&ctx, key)),
                }
                done += 1;
            }
            done
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let keys = list.check_invariants();
    println!("ran {total} operations from 4 threads; {keys} keys remain, invariants hold");

    // The per-site persistence accounting behind Figures 3b–3e.
    let stats = pool.stats();
    println!("\npersistence instructions executed:");
    println!("  psync/pfence: {}", stats.psync + stats.pfence);
    for (site, name) in tracking::sites::SITES {
        let n = stats.pwb_at(site);
        if n > 0 {
            println!("  pwb[{name:<14}] {n}");
        }
    }
}
