//! Exchanger demo: pairs of threads rendezvous through the detectably
//! recoverable exchanger and swap work items — the paper's third data
//! structure (Section 6).
//!
//! An even number of workers each contribute a value; the exchanger pairs
//! them two at a time. The demo verifies the pairing is a perfect mutual
//! matching, then shows the timeout path (a lone thread cancelling its
//! slot capture cleanly).
//!
//! ```text
//! cargo run -p examples --bin exchanger_pairing
//! ```

use std::sync::Arc;

use pmem::{PmemPool, PoolCfg, ThreadCtx};
use tracking::RecoverableExchanger;

const WORKERS: usize = 6;
const ROUNDS: usize = 50;

fn main() {
    let pool = Arc::new(PmemPool::new(PoolCfg::perf(64 << 20)));
    let ex = RecoverableExchanger::new(pool.clone(), 0);

    println!("{WORKERS} workers × {ROUNDS} rounds of pairing…");
    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let ex = ex.clone();
        let ctx = ThreadCtx::new(pool.clone(), w);
        handles.push(std::thread::spawn(move || {
            let mut partners = Vec::with_capacity(ROUNDS);
            for round in 0..ROUNDS {
                // value encodes (worker, round) so pairings are auditable
                let token = (w * ROUNDS + round) as u64;
                let got = ex
                    .exchange(&ctx, token, 200_000_000)
                    .expect("with an even worker count every exchange pairs up");
                partners.push((token, got));
            }
            partners
        }));
    }
    let all: Vec<Vec<(u64, u64)>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Audit: every handed-out token was received exactly once, and the
    // matching is mutual ((a received b) implies (b received a)).
    let mut pairs = std::collections::HashMap::new();
    for worker in &all {
        for &(mine, got) in worker {
            pairs.insert(mine, got);
        }
    }
    assert_eq!(pairs.len(), WORKERS * ROUNDS);
    let mut mutual = 0;
    for (&mine, &got) in &pairs {
        assert_eq!(pairs.get(&got), Some(&mine), "pairing must be mutual");
        mutual += 1;
    }
    println!(
        "{} exchanges, all mutual — no value lost or duplicated",
        mutual
    );

    // The timeout path: a lone exchanger cancels and leaves the slot free.
    let ctx = ThreadCtx::new(pool.clone(), 0);
    let r = ex.exchange(&ctx, 999, 100);
    assert_eq!(r, None, "no peer: the exchange must time out");
    assert!(ex.is_free(), "a cancelled capture must free the slot");
    println!("lone exchange timed out cleanly; slot free again");

    let stats = pool.stats();
    println!(
        "\npersistence instructions: {} pwbs, {} psyncs/pfences",
        stats.pwb_total(),
        stats.psync + stats.pfence
    );
}
