//! A persistent key-value service built on the recoverable resizable hash
//! table — the workload the paper's introduction motivates: a storage index
//! on NVMM that survives power failures with every in-flight request's
//! outcome decidable, and that keeps growing (resizing) under load without
//! ever losing a key to a crash.
//!
//! Two phases:
//!
//! 1. **Service loop (crash model).** A request loop drives zipfian-skewed
//!    puts/removes/gets against the table while power failures strike
//!    mid-request — including mid-*resize*, since the put-heavy skew grows
//!    the table through several doublings. Each failure kills the service
//!    at a random persistent-memory event, the adversary destroys all
//!    unflushed lines, and the rebooted service re-attaches to the same
//!    pool, recovers the interrupted request with the detectable
//!    `recover_*` API, and continues. An audit trail prints what survived.
//!
//! 2. **Recovery at scale (perf).** Loads the table to several sizes in a
//!    real-flush pool, "reboots", and measures time-to-first-serve: how
//!    long until a fresh process handle answers its first `get`. The
//!    Tracking table needs no log replay or scan — recovery is
//!    re-attaching to the root and finishing at most one op per thread —
//!    so the number stays flat while a full-scan rebuild strawman (what a
//!    non-recoverable index must do) grows linearly with the data. Results
//!    land in `results/recovery_at_scale.csv`.
//!
//! ```text
//! cargo run --release -p examples --bin persistent_kv [-- --smoke]
//! ```
//!
//! `--smoke` shrinks both phases for CI (seconds, deterministic).

use std::sync::Arc;
use std::time::Instant;

use pmem::{PmemPool, PoolCfg, SeededAdversary, ThreadCtx};
use tracking::RecoverableHashMap;

/// Distinct keys the zipfian service loop draws from.
const SERVICE_KEYS: usize = 10_000;
/// Zipf skew exponent (the YCSB default).
const ZIPF_S: f64 = 0.99;

struct Service {
    index: RecoverableHashMap,
    ctx: ThreadCtx,
}

impl Service {
    /// Boots the service over a pool, re-attaching to any existing index.
    fn boot(pool: Arc<PmemPool>) -> Service {
        let index = RecoverableHashMap::new(pool.clone(), 0);
        let ctx = ThreadCtx::new(pool, 0);
        Service { index, ctx }
    }
}

/// Zipfian sampler over ranks `1..=n`: precomputed cumulative weights,
/// binary search per draw.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Maps a uniform `u64` draw to a rank in `0..n` (0 = hottest).
    fn sample(&self, r: u64) -> usize {
        let total = *self.cumulative.last().expect("empty zipf");
        let u = (r >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c < u)
    }
}

fn xorshift(rng: &mut u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    service_loop(smoke);
    recovery_at_scale(smoke);
}

// ---------------------------------------------------------------- phase 1

/// The crash-model request loop: zipfian traffic, mid-request power
/// failures, detectable recovery after each reboot.
fn service_loop(smoke: bool) {
    let bursts = if smoke { 6 } else { 20 };
    let reqs_per_burst = if smoke { 120 } else { 400 };

    let pool = Arc::new(PmemPool::new(PoolCfg::model(512 << 20)));
    let zipf = Zipf::new(SERVICE_KEYS, ZIPF_S);
    let mut rng = 0xFEED_FACEu64;
    let mut stored = 0u64;
    let mut total_reqs = 0usize;
    let mut power_failures = 0usize;

    println!(
        "service loop: {bursts} boots x {reqs_per_burst} requests, \
         zipf(s={ZIPF_S}) over {SERVICE_KEYS} keys"
    );
    let mut svc = Service::boot(pool.clone());
    for burst in 0..bursts {
        for _ in 0..reqs_per_burst {
            let r = xorshift(&mut rng);
            let key = zipf.sample(r) as u64 + 1;
            let val = (r >> 20) | 1;
            // Every ~150 requests a power failure strikes mid-request. The
            // put-heavy mix below keeps the table growing, so some of
            // these land inside a bucket migration. The crashed service is
            // replaced by a rebooted one and the loop keeps serving.
            if r.is_multiple_of(151) {
                svc = self_destruct(&pool, svc, key, val, r);
                power_failures += 1;
                continue;
            }
            match r % 10 {
                0..=5 => drop(svc.index.put(&svc.ctx, key, val)),
                6..=7 => drop(svc.index.remove(&svc.ctx, key)),
                _ => drop(svc.index.get(&svc.ctx, key)),
            }
            total_reqs += 1;
        }
        stored = svc.index.check_invariants() as u64;
        println!(
            "burst {burst:>2}: {stored} keys across {} buckets, invariants hold",
            svc.index.bucket_count()
        );
    }
    println!(
        "served ~{total_reqs} requests across {bursts} boots with {power_failures} \
         power failures; final index size {stored}\n"
    );
}

/// A power failure in the middle of a request: crash injection stops the
/// thread at a random persistent-memory event (possibly deep inside a
/// resize migration it was helping), the adversary destroys all unflushed
/// lines, and the *rebooted* service recovers the request. Returns the
/// service to keep using — the rebooted one if the crash fired.
fn self_destruct(pool: &Arc<PmemPool>, svc: Service, key: u64, val: u64, r: u64) -> Service {
    let removing = (r >> 7) & 1 == 0;
    svc.ctx.begin_op(tracking::sites::S_CP);
    pool.crash_ctl().arm_after(r % 400);
    let pre = if removing {
        pmem::run_crashable(|| svc.index.remove_started(&svc.ctx, key).is_some())
    } else {
        pmem::run_crashable(|| svc.index.put_started(&svc.ctx, key, val))
    };
    pool.crash_ctl().disarm();
    let op = if removing { "remove" } else { "put" };
    match pre {
        Some(done) => {
            println!("  power failure armed too late; {op}({key}) completed ({done})");
            svc
        }
        None => {
            pool.crash(&mut SeededAdversary::new(r | 1));
            // Reboot: a fresh service handle over the same (persistent) pool.
            let rebooted = Service::boot(pool.clone());
            let (outcome, expect_present) = if removing {
                let gone = rebooted.index.recover_remove(&rebooted.ctx, key);
                (format!("{gone:?}"), false)
            } else {
                let ok = rebooted.index.recover_put(&rebooted.ctx, key, val);
                (format!("{ok}"), true)
            };
            let present = rebooted.index.get(&rebooted.ctx, key).is_some();
            if expect_present {
                assert!(present, "a recovered put must leave the key visible");
            } else {
                assert!(!present, "a recovered remove must leave the key absent");
            }
            println!(
                "  power failure during {op}({key}): recovered response={outcome}, \
                 present after reboot={present}"
            );
            rebooted.index.check_invariants();
            rebooted
        }
    }
}

// ---------------------------------------------------------------- phase 2

/// One row of the recovery-at-scale table.
struct ScaleRow {
    keys: usize,
    pool_mb: usize,
    buckets: u64,
    load_ms: f64,
    first_serve_us: f64,
    rebuild_ms: f64,
}

/// Loads the table at several scales in a real-flush pool and measures
/// time-to-first-serve after a reboot against a full-scan strawman.
fn recovery_at_scale(smoke: bool) {
    // Pool sizes track the sentinel ladder: every resize generation keeps
    // its head/tail sentinel lines allocated (reclaimable on churn pools;
    // this phase uses the paper's pure bump arena), so the pool must hold
    // roughly two full bucket arrays of sentinels plus the live nodes.
    let scales: &[(usize, usize)] = if smoke {
        &[(5_000, 64), (20_000, 128), (80_000, 256)]
    } else {
        &[(50_000, 256), (200_000, 1024), (800_000, 4096)]
    };

    println!("recovery at scale ({} scales):", scales.len());
    let mut rows = Vec::new();
    for &(keys, pool_mb) in scales {
        let pool = Arc::new(PmemPool::new(PoolCfg::perf(pool_mb << 20)));

        // Load phase: distinct keys, values derived from the key. The
        // table doubles through many resize generations on the way up.
        let loader = Service::boot(pool.clone());
        let start = Instant::now();
        for k in 1..=keys as u64 {
            loader.index.put(&loader.ctx, k, k * 3 + 1);
        }
        let load_ms = start.elapsed().as_secs_f64() * 1e3;
        let buckets = loader.index.bucket_count();
        drop(loader);

        // Reboot: time until a fresh handle answers its first get.
        // Recovery for the Tracking table is re-attaching to the root and
        // (per thread) finishing at most one in-flight op — no scan.
        let start = Instant::now();
        let rebooted = Service::boot(pool.clone());
        let probe = rebooted.index.get(&rebooted.ctx, keys as u64 / 2 + 1);
        let first_serve_us = start.elapsed().as_secs_f64() * 1e6;
        assert_eq!(probe, Some((keys as u64 / 2 + 1) * 3 + 1));

        // Strawman: what a non-recoverable index must do after a crash —
        // walk everything durable and rebuild a transient map.
        let start = Instant::now();
        let rebuilt: std::collections::HashMap<u64, u64> =
            rebooted.index.entries().into_iter().collect();
        let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(rebuilt.len(), keys);

        println!(
            "  {keys:>7} keys / {buckets:>6} buckets (pool {pool_mb:>4} MiB): \
             load {load_ms:>8.1} ms, first-serve {first_serve_us:>7.1} us, \
             full-scan rebuild {rebuild_ms:>8.1} ms"
        );
        rows.push(ScaleRow {
            keys,
            pool_mb,
            buckets,
            load_ms,
            first_serve_us,
            rebuild_ms,
        });
    }

    let mut csv = String::from("keys,pool_mb,buckets,load_ms,first_serve_us,rebuild_ms\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.3}\n",
            r.keys, r.pool_mb, r.buckets, r.load_ms, r.first_serve_us, r.rebuild_ms
        ));
    }
    std::fs::create_dir_all("results").expect("creating results/");
    let path = "results/recovery_at_scale.csv";
    std::fs::write(path, csv).expect("writing recovery CSV");
    println!("  -> {path}");
}
