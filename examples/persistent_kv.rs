//! A tiny persistent key-value-style service built on the recoverable BST —
//! the kind of workload the paper's introduction motivates: a storage
//! index on NVMM that survives crashes with every in-flight request's
//! outcome decidable.
//!
//! Simulates a request loop (inserts/deletes/lookups of "object ids") that
//! is killed by a power failure mid-burst, then restarted: the restarted
//! service re-attaches to the same pool, recovers the interrupted request,
//! and continues — printing an audit trail of what survived.
//!
//! ```text
//! cargo run -p examples --bin persistent_kv
//! ```

use std::sync::Arc;

use pmem::{PmemPool, PoolCfg, SeededAdversary, ThreadCtx};
use tracking::RecoverableBst;

const BURSTS: usize = 20;
const REQS_PER_BURST: usize = 200;

struct Service {
    index: RecoverableBst,
    ctx: ThreadCtx,
}

impl Service {
    /// Boots the service over a pool, re-attaching to any existing index.
    fn boot(pool: Arc<PmemPool>) -> Service {
        let index = RecoverableBst::new(pool.clone(), 0);
        let ctx = ThreadCtx::new(pool, 0);
        Service { index, ctx }
    }

    fn put(&self, id: u64) -> bool {
        self.index.insert(&self.ctx, id)
    }

    fn evict(&self, id: u64) -> bool {
        self.index.delete(&self.ctx, id)
    }

    fn has(&self, id: u64) -> bool {
        self.index.find(&self.ctx, id)
    }
}

fn main() {
    let pool = Arc::new(PmemPool::new(PoolCfg::model(512 << 20)));
    let mut rng = 0xFEEDFACEu64;
    let mut stored = 0u64;
    let mut total_reqs = 0usize;
    let mut power_failures = 0usize;

    'bursts: for burst in 0..BURSTS {
        let svc = Service::boot(pool.clone());
        for _ in 0..REQS_PER_BURST {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let id = rng % 1000 + 1;
            // Every ~70 requests, a power failure strikes mid-request.
            let fail_now = rng.is_multiple_of(70);
            if fail_now {
                self_destruct(&pool, &svc, id, rng);
                power_failures += 1;
                // service process is gone; reboot in the next burst
                continue 'bursts;
            }
            match rng % 10 {
                0..=4 => drop(svc.put(id)),
                5..=7 => drop(svc.evict(id)),
                _ => drop(svc.has(id)),
            }
            total_reqs += 1;
        }
        stored = svc.index.check_invariants() as u64;
        println!("burst {burst:>2}: index holds {stored} ids, invariants hold");
    }
    println!(
        "\nserved ~{total_reqs} requests across {BURSTS} boots with {power_failures} \
         power failures; final index size {stored}"
    );
}

/// A power failure in the middle of a `put`: crash injection stops the
/// thread at a random persistent-memory event, the adversary destroys all
/// unflushed lines, and the *rebooted* service recovers the request.
fn self_destruct(pool: &Arc<PmemPool>, svc: &Service, id: u64, rng: u64) {
    svc.ctx.begin_op(tracking::sites::S_CP);
    pool.crash_ctl().arm_after(rng % 300);
    let pre = pmem::run_crashable(|| svc.index.insert_started(&svc.ctx, id));
    pool.crash_ctl().disarm();
    match pre {
        Some(r) => println!("  power failure armed too late; put({id}) completed ({r})"),
        None => {
            pool.crash(&mut SeededAdversary::new(rng | 1));
            // Reboot: a fresh Service over the same (persistent) pool.
            let rebooted = Service::boot(pool.clone());
            let outcome = rebooted.index.recover_insert(&rebooted.ctx, id);
            let present = rebooted.has(id);
            assert!(present, "a recovered successful put must be visible");
            println!(
                "  power failure during put({id}): recovered response={outcome}, \
                 present after reboot={present}"
            );
            rebooted.index.check_invariants();
        }
    }
}
