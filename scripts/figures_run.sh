#!/usr/bin/env bash
# Mirrors the paper artifact's figures_run.sh: regenerates every figure's
# data into results/. Pass harness flags through, e.g.
#   ./scripts/figures_run.sh --duration-ms 1000 --threads 1,2,4,8
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build -p bench --release --bin figures --bin crashsweep
# run the prebuilt binaries directly so compilation never shares the CPU
# with the timed windows (this container has one core)
./target/release/figures all "$@"
# exhaustive crash-sweep verification (fast; fails the run on any
# detectability / durable-linearizability violation)
./target/release/crashsweep --out results/crashsweep
