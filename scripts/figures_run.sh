#!/usr/bin/env bash
# Mirrors the paper artifact's figures_run.sh: regenerates every figure's
# data into results/. Pass harness flags through, e.g.
#   ./scripts/figures_run.sh --duration-ms 1000 --threads 1,2,4,8
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build -p bench --release --bin figures
# run the prebuilt binary directly so compilation never shares the CPU
# with the timed windows (this container has one core)
exec ./target/release/figures all "$@"
