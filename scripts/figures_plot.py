#!/usr/bin/env python3
"""Mirrors the paper artifact's figures_plot.py: renders every CSV in
results/ into a PNG per figure (requires matplotlib; install separately —
the Rust workspace is dependency-free on purpose).

Usage: python3 scripts/figures_plot.py [results_dir] [out_dir]
"""
import csv
import pathlib
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib not available: pip install matplotlib")

results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "results/plots")
out.mkdir(parents=True, exist_ok=True)

def rows(path):
    with open(path) as f:
        return list(csv.DictReader(f))

def line_plot(path, series_key, x_key, y_key, ylabel):
    data = {}
    for r in rows(path):
        try:
            data.setdefault(r[series_key], []).append(
                (float(r[x_key]), float(r[y_key]))
            )
        except (ValueError, KeyError):
            continue  # summary/aggregate rows
    if not data:
        return False
    plt.figure(figsize=(5, 3.2))
    for name, pts in data.items():
        pts.sort()
        plt.plot([p[0] for p in pts], [p[1] for p in pts], marker="o", label=name)
    plt.xlabel(x_key)
    plt.ylabel(ylabel)
    plt.title(path.stem, fontsize=9)
    plt.legend(fontsize=6)
    plt.tight_layout()
    plt.savefig(out / (path.stem + ".png"), dpi=150)
    plt.close()
    return True

plotted = 0
for p in sorted(results.glob("*.csv")):
    header = open(p).readline().strip().split(",")
    if "threads" in header and "mops" in header:
        key = "algo" if "algo" in header else "variant"
        plotted += line_plot(p, key, "threads", "mops", "Mops/s")
    elif "threads" in header and "psync_per_op" in header:
        plotted += line_plot(p, "algo", "threads", "psync_per_op", "psync/op")
    elif "threads" in header and "pwb_per_op" in header and "algo" in header:
        plotted += line_plot(p, "algo", "threads", "pwb_per_op", "pwb/op")
    elif "find_pct" in header:
        plotted += line_plot(p, "algo", "find_pct", "mops", "Mops/s")
    elif "range" in header and "mops" in header:
        plotted += line_plot(p, "algo", "range", "mops", "Mops/s")

print(f"rendered {plotted} figures into {out}")
